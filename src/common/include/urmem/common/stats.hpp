// Statistical primitives shared by the yield analysis and the
// application-quality experiments: normal CDF/quantile, descriptive
// statistics, and (weighted) empirical distribution functions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace urmem {

/// Standard normal cumulative distribution function Phi(x).
[[nodiscard]] double normal_cdf(double x);

/// Inverse of normal_cdf. `p` must lie in (0, 1).
/// Acklam's rational approximation refined with one Halley step
/// (relative error below 1e-13 over the full domain).
[[nodiscard]] double normal_quantile(double p);

/// Arithmetic mean; empty input yields 0.
[[nodiscard]] double mean(std::span<const double> values);

/// Unbiased sample variance (n-1 denominator); fewer than 2 values yield 0.
[[nodiscard]] double variance(std::span<const double> values);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> values);

/// `count` evenly spaced points from `lo` to `hi` inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

/// `count` logarithmically spaced points from `lo` to `hi` inclusive
/// (both strictly positive).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t count);

/// Weighted empirical cumulative distribution function.
///
/// Samples carry nonnegative weights (uniform MC uses weight 1; the
/// stratified fault-count sweep of the paper's Fig. 5 uses per-stratum
/// probabilities Pr(N = n)). Weights are normalized internally, so the
/// CDF always reaches 1 at +infinity.
class empirical_cdf {
 public:
  empirical_cdf() = default;

  /// Builds the distribution from (value, weight) pairs.
  /// Weights must be nonnegative with a positive sum.
  empirical_cdf(std::vector<double> values, std::vector<double> weights);

  /// Builds an unweighted distribution (all weights 1).
  explicit empirical_cdf(std::vector<double> values);

  /// P(X <= x).
  [[nodiscard]] double at(double x) const;

  /// Smallest sample value v with P(X <= v) >= p; `p` in (0, 1].
  [[nodiscard]] double quantile(double p) const;

  /// Number of distinct support points.
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Sorted support points (deduplicated).
  [[nodiscard]] const std::vector<double>& support() const { return values_; }

  /// Cumulative probability at each support point.
  [[nodiscard]] const std::vector<double>& cumulative() const { return cumulative_; }

 private:
  std::vector<double> values_;      // sorted, unique
  std::vector<double> cumulative_;  // matching cumulative probabilities
};

}  // namespace urmem
