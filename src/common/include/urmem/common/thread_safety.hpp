// Clang thread-safety (capability) analysis for the concurrent tiers.
//
// The serving path (memory_service's epoch gate and stripe locks), the
// campaign runner's work-stealing pool and the driver's pacing state
// all promise the same thing: integer results that are bit-identical at
// any thread count. The dynamic TSan CI lane checks the schedules a run
// happens to exercise; the annotations here make the *locking
// discipline itself* a compile-time property — `-Wthread-safety
// -Werror` on the Clang lanes rejects any access to guarded state
// without its capability, on every build, before any test runs.
//
// Usage
// -----
//  * Declare lock members as ts_mutex / ts_shared_mutex (annotated
//    capability types; plain std wrappers off-Clang).
//  * Tag protected members with URMEM_GUARDED_BY(lock_) (or
//    URMEM_PT_GUARDED_BY for pointees) and lock-discipline functions
//    with URMEM_REQUIRES / URMEM_REQUIRES_SHARED / URMEM_EXCLUDES.
//  * Take locks through the scoped types below (ts_lock_guard,
//    ts_unique_lock, ts_shared_lock) — std::scoped_lock and friends are
//    invisible to the analysis.
//  * Condition waits go through ts_condition_variable::wait(mutex)
//    inside a caller-side predicate loop; there is deliberately no
//    predicate overload, because the analysis treats a lambda as a
//    separate function and would not see the held capability inside it.
//
// Everything expands to nothing on compilers without the capability
// attributes (GCC, MSVC), so the annotated tree builds identically
// everywhere; only Clang checks it.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define URMEM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef URMEM_THREAD_ANNOTATION
#define URMEM_THREAD_ANNOTATION(x)  // no capability analysis on this compiler
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define URMEM_CAPABILITY(x) URMEM_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define URMEM_SCOPED_CAPABILITY URMEM_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable only with `x` held (shared) and writable only
/// with `x` held exclusively.
#define URMEM_GUARDED_BY(x) URMEM_THREAD_ANNOTATION(guarded_by(x))
/// Pointer/smart-pointer member whose *pointee* is protected by `x`.
#define URMEM_PT_GUARDED_BY(x) URMEM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (exclusively / shared) and returns
/// with it held.
#define URMEM_ACQUIRE(...) \
  URMEM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define URMEM_ACQUIRE_SHARED(...) \
  URMEM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (generic release also covers a
/// shared hold, which is what scoped-lock destructors want).
#define URMEM_RELEASE(...) \
  URMEM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define URMEM_RELEASE_SHARED(...) \
  URMEM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability only when returning `true`.
#define URMEM_TRY_ACQUIRE(...) \
  URMEM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must already hold the capability (exclusively / shared).
#define URMEM_REQUIRES(...) \
  URMEM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define URMEM_REQUIRES_SHARED(...) \
  URMEM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (non-reentrant entry points).
#define URMEM_EXCLUDES(...) URMEM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define URMEM_RETURN_CAPABILITY(x) URMEM_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch for patterns the analysis cannot express (for example a
/// lock chosen by runtime index and released through a different hook).
/// Every use carries a comment saying why the analysis cannot see it.
#define URMEM_NO_THREAD_SAFETY_ANALYSIS \
  URMEM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace urmem {

/// std::mutex with capability annotations. Take it through
/// ts_lock_guard; lock()/unlock() stay public for the rare manual site.
class URMEM_CAPABILITY("mutex") ts_mutex {
 public:
  ts_mutex() = default;
  ts_mutex(const ts_mutex&) = delete;
  ts_mutex& operator=(const ts_mutex&) = delete;

  void lock() URMEM_ACQUIRE() { mutex_.lock(); }
  void unlock() URMEM_RELEASE() { mutex_.unlock(); }
  bool try_lock() URMEM_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class ts_condition_variable;
  std::mutex mutex_;
};

/// std::shared_mutex with capability annotations (exclusive = writer /
/// epoch boundary, shared = readers / traffic).
class URMEM_CAPABILITY("shared_mutex") ts_shared_mutex {
 public:
  ts_shared_mutex() = default;
  ts_shared_mutex(const ts_shared_mutex&) = delete;
  ts_shared_mutex& operator=(const ts_shared_mutex&) = delete;

  void lock() URMEM_ACQUIRE() { mutex_.lock(); }
  void unlock() URMEM_RELEASE() { mutex_.unlock(); }
  void lock_shared() URMEM_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() URMEM_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// Scoped exclusive hold of a ts_mutex (std::scoped_lock equivalent).
class URMEM_SCOPED_CAPABILITY ts_lock_guard {
 public:
  explicit ts_lock_guard(ts_mutex& mutex) URMEM_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~ts_lock_guard() URMEM_RELEASE() { mutex_.unlock(); }
  ts_lock_guard(const ts_lock_guard&) = delete;
  ts_lock_guard& operator=(const ts_lock_guard&) = delete;

 private:
  ts_mutex& mutex_;
};

/// Scoped exclusive hold of a ts_shared_mutex (the epoch-boundary /
/// snapshot mode of the serving gate).
class URMEM_SCOPED_CAPABILITY ts_unique_lock {
 public:
  explicit ts_unique_lock(ts_shared_mutex& mutex) URMEM_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~ts_unique_lock() URMEM_RELEASE() { mutex_.unlock(); }
  ts_unique_lock(const ts_unique_lock&) = delete;
  ts_unique_lock& operator=(const ts_unique_lock&) = delete;

 private:
  ts_shared_mutex& mutex_;
};

/// Scoped shared hold of a ts_shared_mutex (the traffic / concurrent
/// scrub mode of the serving gate). The destructor's generic RELEASE
/// covers the shared hold.
class URMEM_SCOPED_CAPABILITY ts_shared_lock {
 public:
  explicit ts_shared_lock(ts_shared_mutex& mutex) URMEM_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ts_shared_lock() URMEM_RELEASE() { mutex_.unlock_shared(); }
  ts_shared_lock(const ts_shared_lock&) = delete;
  ts_shared_lock& operator=(const ts_shared_lock&) = delete;

 private:
  ts_shared_mutex& mutex_;
};

/// Condition variable for ts_mutex. wait() atomically releases the
/// mutex, blocks, and reacquires before returning — callers hold the
/// mutex across the call and loop on their predicate:
///
///   ts_lock_guard lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
///
/// No predicate overload on purpose: the analysis treats a lambda as a
/// separate function, so guarded reads inside one would (rightly) fail
/// the capability check even though the lock is held.
class ts_condition_variable {
 public:
  ts_condition_variable() = default;
  ts_condition_variable(const ts_condition_variable&) = delete;
  ts_condition_variable& operator=(const ts_condition_variable&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(ts_mutex& mutex) URMEM_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait, then release the
    // std::unique_lock wrapper so ownership stays with the caller's
    // scoped guard. The capability is held on entry and on return,
    // matching the REQUIRES contract.
    std::unique_lock<std::mutex> relock(mutex.mutex_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace urmem
