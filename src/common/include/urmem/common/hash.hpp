// Content hashing for checkpoint identity.
//
// Checkpoint files are keyed by the hash of the normalized scenario
// spec they were computed under, so a resumed or merged campaign can
// reject results that belong to a different experiment. The hash only
// needs to be stable, cheap and collision-resistant at "different specs
// hash differently" scale — FNV-1a 64 over the canonical JSON dump is
// plenty, and being constexpr keeps it dependency-free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace urmem {

/// FNV-1a 64-bit hash of `text`.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Fixed-width 16-digit lowercase hex form (what checkpoint files and
/// manifests store as `spec_hash`).
[[nodiscard]] inline std::string to_hex16(std::uint64_t value) {
  constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace urmem
