// Console table rendering for the benchmark harnesses.
//
// Every figure/table reproduction binary prints its series through this
// formatter so the output is aligned, diffable, and easy to paste into
// EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace urmem {

/// Fixed-width console table with a header row.
class console_table {
 public:
  explicit console_table(std::vector<std::string> headers);

  /// Appends a data row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` significant digits (general format).
[[nodiscard]] std::string format_double(double value, int digits = 4);

/// Formats `value` in scientific notation with `digits` digits of mantissa.
[[nodiscard]] std::string format_scientific(double value, int digits = 3);

/// Formats a ratio as a percentage string, e.g. 0.314 -> "31.4%".
[[nodiscard]] std::string format_percent(double ratio, int digits = 1);

}  // namespace urmem
