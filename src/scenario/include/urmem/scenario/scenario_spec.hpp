// The declarative scenario API (tentpole of the experiment stack).
//
// A scenario_spec is a plain-struct description of one experiment
// family: memory geometry, fault model operating point, seed policy,
// the protection schemes to compare (by registry name + options), the
// workload to run them through (by registry name + options), sweep
// axes, and run parameters. Specs round-trip through JSON
// (to_json/from_json) with diagnostics that name the offending field
// for unknown keys and out-of-range values, and accept dotted
// `key=value` CLI overrides — the `urmem-run` driver and the thin
// figure-bench wrappers are both just "build a spec, hand it to
// scenario_runner".
//
// JSON schema (all sections optional; defaults shown):
//
//   {
//     "name": "scenario",
//     "geometry": {"rows_per_tile": 4096, "word_bits": 32, "frac_bits": 16},
//     "fault":    {"pcell": 1e-3, "vdd": 0.73, "polarity": "flip",
//                  "vcrit_mean": 0.0, "vcrit_sigma": 0.0, "model_seed": 1,
//                  "age_hours": 0},
//     "seeds":    {"root": 42, "app": 7},
//     "run":      {"threads": 0, "batch": 0},
//     "scrub":    {"interval": 0, "rows_per_pass": 0,
//                  "retire_correctable": true},
//     "retire":   {"policy": "mark", "max_retries": 1, "spare_rows": 0,
//                  "reliable_region": 0},
//     "serve":    {"clients": 1, "requests": 4096, "requests_per_epoch": 0,
//                  "store_percent": 20, "quality_percent": 5,
//                  "initial_faults": 0, "arrivals_per_epoch": 0,
//                  "intermittent_cells": 0},
//     "schemes":  ["none", {"name": "shuffle", "nfm": 1}, "shuffle:nfm=2"],
//     "regions":  [{"rows": "0-1023", "scheme": "secded", "spare_rows": 8},
//                  {"rows": "1024-4095", "scheme": "shuffle:nfm=2",
//                   "pcell": 1e-3}],
//     "workload": {"name": "fig7-quality", "samples": 10},
//     "sweep":    [{"param": "fault.pcell", "values": [1e-4, 1e-3]}]
//   }
//
// Scheme/workload entries take either the object form ({"name": ...,
// <options>...}) or the compact string form "name:key=value:key=value"
// that the CLI uses. `fault.pcell`/`fault.vdd` are absent-by-default:
// an explicit `"pcell": 0` means "inject zero faults", not "unset".
// The optional `regions` section carves the tile into an ordered,
// gap-free list of row ranges, each with its own scheme recipe,
// optional spare-row pool, and optional fault operating-point override
// (heterogeneous-reliability tiers); it resolves into one extra
// `tiered` scheme entry appended to the comparison set.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "urmem/common/json.hpp"
#include "urmem/lifecycle/lifecycle_manager.hpp"
#include "urmem/lifecycle/scrubber.hpp"
#include "urmem/memory/cell_failure_model.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scenario/options.hpp"
#include "urmem/sim/memory_pipeline.hpp"

namespace urmem {

/// Tile geometry and fixed-point format of the unreliable store.
struct geometry_spec {
  std::uint32_t rows_per_tile = 4096;  ///< 16 KB of 32-bit words
  unsigned word_bits = 32;
  unsigned frac_bits = 16;  ///< Q15.16

  /// Short human label, "16KB" for the default tile.
  [[nodiscard]] std::string size_label() const;
};

/// Fault-model operating point. Exactly one of pcell/vdd is usually
/// set; vdd derives Pcell through the critical-voltage model. Presence
/// is explicit (nullopt = unset), so `pcell: 0` is a legitimate
/// fault-free operating point rather than a sentinel.
struct fault_spec {
  std::optional<double> pcell;  ///< cell failure probability in [0, 1)
  std::optional<double> vdd;    ///< supply in (0, 2] V (used when pcell unset)
  fault_polarity polarity = fault_polarity::flip;
  double vcrit_mean = 0.0;   ///< 0 = cell model default
  double vcrit_sigma = 0.0;  ///< 0 = cell model default
  std::uint64_t model_seed = 1;
  /// Hours of BTI-like stress: failure_model() ages every cell by
  /// bti_vcrit_shift(age_hours) volts, so vdd-derived fault maps grow
  /// monotonically (supersets) along an age sweep. 0 = fresh part.
  double age_hours = 0.0;
};

/// Background-scrub section (`scrub`): cadence and budget of the
/// lifecycle workloads' patrol scrubber. Mirrors scrub_config; the
/// section is omitted from to_json when left at its defaults.
struct scrub_spec {
  std::uint32_t interval = 0;       ///< epochs between passes; 0 = off
  std::uint32_t rows_per_pass = 0;  ///< rows walked per pass; 0 = whole tile
  bool retire_correctable = true;   ///< CE-threshold proactive retirement

  [[nodiscard]] scrub_config config() const {
    return scrub_config{interval, rows_per_pass, retire_correctable};
  }

  friend constexpr bool operator==(const scrub_spec&,
                                   const scrub_spec&) = default;
};

/// Row-retirement section (`retire`): the degradation policy the
/// lifecycle workloads run when detection outruns the spare pools.
/// `spare_rows` adds a lifecycle pool on top of whatever the scheme
/// recipe or region table already provisions (sweepable to reproduce
/// pool-exhaustion curves). Omitted from to_json at its defaults.
struct retire_spec {
  degrade_policy policy = degrade_policy::mark;
  std::uint32_t max_retries = 1;     ///< raw read retries per UE row
  std::uint32_t spare_rows = 0;      ///< extra runtime-retirement pool
  std::uint32_t reliable_region = 0; ///< donor region of the remap policy

  [[nodiscard]] retire_config config() const {
    return retire_config{policy, max_retries, reliable_region};
  }

  friend constexpr bool operator==(const retire_spec&,
                                   const retire_spec&) = default;
};

/// Serving-mode section (`serve`): request mix and epoch pacing of the
/// urmem-serve tier. Requests are indexed globally 0..requests-1 and
/// request i belongs to lifecycle epoch i / requests_per_epoch, so the
/// request set — and every integer counter derived from it — is a pure
/// function of the spec, independent of how many client threads
/// execute it. The section is omitted from to_json at its defaults, so
/// specs that never mention serving round-trip unchanged.
struct serve_spec {
  std::uint32_t clients = 1;             ///< default driver thread count
  std::uint64_t requests = 4096;         ///< closed-loop request budget
  std::uint64_t requests_per_epoch = 0;  ///< 0 = one epoch, no aging
  std::uint32_t store_percent = 20;      ///< % of requests that store
  std::uint32_t quality_percent = 5;     ///< % that run a quality query
  std::uint64_t initial_faults = 0;      ///< exact manufactured fault count
  std::uint32_t arrivals_per_epoch = 0;  ///< persistent faults per epoch
  std::uint32_t intermittent_cells = 0;  ///< timeline intermittent pool

  friend constexpr bool operator==(const serve_spec&,
                                   const serve_spec&) = default;
};

/// Seed policy: `root` seeds the campaign pool (trial i always runs on
/// make_stream_rng(root, i)) and every auxiliary named stream; `app`
/// seeds dataset synthesis so workload data is stable under root-seed
/// sweeps.
struct seed_spec {
  std::uint64_t root = 42;
  std::uint64_t app = 7;
};

/// Campaign scheduling parameters.
struct run_spec {
  unsigned threads = 0;     ///< 0 = all hardware threads
  std::uint64_t batch = 0;  ///< 0 = auto
};

/// One protection scheme by registry name, with its options.
struct scheme_ref {
  std::string name;
  option_map options;
};

/// The workload by registry name, with its options.
struct workload_ref {
  std::string name;
  option_map options;
};

/// One sweep axis: the dotted spec path it overrides and the values it
/// takes. Axes expand into their cartesian product, first axis
/// outermost.
struct sweep_axis {
  std::string param;               ///< e.g. "fault.pcell", "workload.samples"
  std::vector<json_value> values;  ///< scalar per grid step
};

/// One heterogeneous-reliability tier: an inclusive row range of the
/// tile, the scheme protecting it, its own spare-row pool, and an
/// optional fault operating-point override.
struct region_spec {
  std::uint32_t first_row = 0;
  std::uint32_t last_row = 0;  ///< inclusive
  scheme_ref scheme;
  std::uint32_t spare_rows = 0;  ///< region-private redundancy pool
  std::optional<double> pcell;   ///< region operating point (else spec fault)
  std::optional<double> vdd;

  [[nodiscard]] std::uint32_t rows() const { return last_row - first_row + 1; }
  /// "a-b" label used in diagnostics, compact forms and display names.
  [[nodiscard]] std::string range_label() const;
};

/// Parses a compact "a-b" (or single "a") inclusive row range; throws
/// spec_error blaming `field` on malformed or descending ranges.
[[nodiscard]] std::pair<std::uint32_t, std::uint32_t> parse_row_range(
    std::string_view field, std::string_view text);

/// Parses the compact "name:key=value:key=value" scheme form into a
/// scheme_ref whose option diagnostics are prefixed with `context` —
/// the same syntax the schemes list and CLI overrides use, exposed for
/// combinators (tiered) that nest scheme entries inside option values.
[[nodiscard]] scheme_ref parse_compact_scheme(std::string_view text,
                                              const std::string& context);

/// One compact region value ("secded,nfm=2,spare_rows=4,pcell=1e-4")
/// split into its scheme compact form and the reserved, range-checked
/// region keys — the single grammar behind the `regions=` CLI override
/// and the `tiered:` scheme form.
struct compact_region_value {
  std::string scheme;  ///< re-joined "name:key=value" compact form
  std::optional<std::uint32_t> spare_rows;
  std::optional<double> pcell;
  std::optional<double> vdd;
};

/// Parses a compact region value; throws spec_error blaming `field` on
/// a missing scheme name or an out-of-range reserved key.
[[nodiscard]] compact_region_value parse_compact_region_value(
    std::string_view field, std::string_view text);

/// Structural problem of a region table (index of the offending region,
/// the member to blame, a message), for callers to wrap in their own
/// field naming.
struct region_table_issue {
  std::size_t index = 0;
  std::string member;  ///< "rows" or "spare_rows"
  std::string message;
};

/// Checks that `regions` is ordered and tiles [0, rows_per_tile)
/// exactly — no duplicates, overlaps or gaps — and that each region's
/// spare pool is sane; nullopt when valid.
[[nodiscard]] std::optional<region_table_issue> find_region_table_issue(
    const std::vector<region_spec>& regions, std::uint32_t rows_per_tile);

/// Declarative description of one experiment family.
struct scenario_spec {
  std::string name = "scenario";
  geometry_spec geometry;
  fault_spec fault;
  seed_spec seeds;
  run_spec run;
  scrub_spec scrub;
  retire_spec retire;
  serve_spec serve;
  std::vector<scheme_ref> schemes;
  std::vector<region_spec> regions;  ///< empty = homogeneous tile
  workload_ref workload;
  std::vector<sweep_axis> sweep;

  /// Parses a spec document; throws spec_error naming the offending
  /// field on unknown keys and out-of-range values. Sweep axes are
  /// validated here too: every axis value is applied to the base spec
  /// and reparsed, so a bad `sweep[i].param` path (or an out-of-range
  /// axis value) fails at parse time instead of mid-grid.
  [[nodiscard]] static scenario_spec from_json(const json_value& doc);

  /// Parses JSON text (convenience over json_value::parse + from_json).
  /// Callers that need to apply CLI overrides first (urmem-run) parse
  /// the json_value themselves and call from_json after overriding.
  [[nodiscard]] static scenario_spec parse_text(std::string_view text);

  /// Normalized JSON form; from_json(to_json()) is the identity.
  [[nodiscard]] json_value to_json() const;

  /// Stable 16-hex-digit hash of the normalized JSON form (sweep
  /// included) — the identity that ties checkpoint files to the exact
  /// spec they were computed under. Specs that normalize identically
  /// hash identically; any semantic change (seed, geometry, scheme
  /// option, sweep value, thread count) produces a different hash.
  [[nodiscard]] std::string canonical_hash() const;

  /// Critical-voltage cell model at this spec's calibration, aged by
  /// fault.age_hours of BTI-like stress when that is non-zero.
  [[nodiscard]] cell_failure_model failure_model() const;

  /// Cell failure probability: fault.pcell (0 is a valid, fault-free
  /// point), or derived from fault.vdd; throws spec_error("fault.pcell")
  /// naming `consumer` when neither is set.
  [[nodiscard]] double resolved_pcell(std::string_view consumer) const;

  /// Region operating point: the region's own pcell/vdd override when
  /// present, else the spec-level point via resolved_pcell.
  [[nodiscard]] double resolved_region_pcell(const region_spec& region,
                                             std::string_view consumer) const;

  /// storage_config matching the geometry (plus optional spare rows).
  [[nodiscard]] storage_config storage(std::uint32_t spare_rows = 0) const;
};

/// Applies one dotted `key=value` CLI override onto a spec JSON
/// document. Top-level aliases: seed -> seeds.root, threads ->
/// run.threads, batch -> run.batch, pcell -> fault.pcell, vdd ->
/// fault.vdd, polarity -> fault.polarity, workload -> the workload
/// entry (compact form), schemes -> the scheme list (comma-separated
/// compact forms). `sweep.<path>=v1,v2,...` replaces-or-appends the
/// axis for `<path>`. Region overrides: `regions=<range>=<scheme,
/// opts...>:<range>=...` replaces the whole region list (reserved
/// per-region keys: spare_rows, pcell, vdd; everything else configures
/// the region's scheme), and `regions.<range>.<key>=value` merges one
/// field into the region whose rows equal `<range>`.
void apply_spec_override(json_value& doc, std::string_view key,
                         std::string_view value);

}  // namespace urmem
