// Diagnosable key/value options for the declarative scenario API.
//
// Every configurable object of a scenario (the spec sections, each
// scheme entry, the workload) carries an option_map: an ordered
// string-to-string map that tracks which keys its consumer actually
// read. After construction the consumer calls check_consumed(), which
// fails loudly — naming the offending field with its full dotted path —
// when a spec contains a key nothing understands. Typos therefore
// surface as "unknown field 'workload.samlpes'" instead of silently
// running the default configuration.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace urmem {

/// Error in a scenario spec, carrying the dotted field path it blames
/// (e.g. "fault.pcell", "schemes[1].nfm").
class spec_error : public std::runtime_error {
 public:
  spec_error(std::string field, std::string_view message);
  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

/// Ordered key/value options with consumption tracking.
class option_map {
 public:
  option_map() = default;
  /// `context` prefixes field names in diagnostics, e.g. "workload".
  explicit option_map(std::string context) : context_(std::move(context)) {}

  [[nodiscard]] const std::string& context() const noexcept { return context_; }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& entries()
      const noexcept {
    return entries_;
  }

  /// Sets `key` (replacing an existing value; insertion order is kept).
  void set(std::string_view key, std::string_view value);

  [[nodiscard]] bool has(std::string_view key) const;

  /// Typed getters: return `fallback` when the key is absent, throw
  /// spec_error (naming the field) when the value does not convert.
  /// Every getter marks its key consumed.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view key,
                                      std::uint64_t fallback) const;
  /// get_u64 restricted to 32 bits — values above 2^32-1 throw instead
  /// of silently wrapping past the caller's range checks.
  [[nodiscard]] std::uint32_t get_u32(std::string_view key,
                                      std::uint32_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  /// Comma-separated list of doubles, e.g. "0.8,0.73,0.66".
  [[nodiscard]] std::vector<double> get_double_list(
      std::string_view key, std::string_view fallback) const;
  /// Comma-separated list of strings.
  [[nodiscard]] std::vector<std::string> get_list(std::string_view key,
                                                  std::string_view fallback) const;

  /// Full diagnostic path of `key` under this map's context.
  [[nodiscard]] std::string field_name(std::string_view key) const;

  /// Throws spec_error for the first key no getter consumed.
  void check_consumed() const;

 private:
  [[nodiscard]] const std::string* raw(std::string_view key) const;

  std::string context_;
  std::vector<std::pair<std::string, std::string>> entries_;
  mutable std::vector<bool> consumed_;
};

/// Splits comma-separated text into its non-empty items — the one
/// list syntax shared by option values, CLI scheme lists and sweep
/// value overrides.
[[nodiscard]] std::vector<std::string> split_csv(std::string_view text);

/// Parses a double with full-token validation; throws spec_error
/// blaming `field` otherwise. Shared by option_map and the spec parser.
[[nodiscard]] double parse_spec_double(std::string_view field,
                                       std::string_view text);

/// Parses an unsigned integer with full-token validation.
[[nodiscard]] std::uint64_t parse_spec_u64(std::string_view field,
                                           std::string_view text);

}  // namespace urmem
