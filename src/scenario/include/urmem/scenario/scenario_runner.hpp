// scenario_runner: the execution engine of the declarative scenario
// API. It expands a scenario_spec's sweep axes into their cartesian
// grid, runs the named workload at every grid point on a campaign pool
// seeded by the spec's seed policy, streams each point's human report
// to an output stream, and reduces the per-point JSON aggregates into
// one deterministic scenario report (what `urmem-run --out` writes and
// CI diffs against goldens).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "urmem/common/json.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/scenario/workload_registry.hpp"

namespace urmem {

/// One grid point's results.
struct scenario_point_result {
  std::string label;       ///< "pcell=0.001, nfm=2"; empty for the base point
  json_value assignments;  ///< object of the axis values this point took
  workload_output output;
};

/// One shard of a sweep grid. Grid points keep their sequential
/// expansion order (first axis outermost, exactly as an unsharded run
/// walks them) and shard `index`/`count` owns every point whose
/// expansion index i satisfies i % count == index — so shard 0/1 is the
/// whole grid and N shards partition it without coordination.
struct shard_spec {
  std::uint64_t index = 0;
  std::uint64_t count = 1;

  /// Parses the CLI form "i/N" (0 <= i < N, N >= 1); throws
  /// spec_error("shard", ...) on malformed text or an out-of-range
  /// index, so `urmem-run --shard=5/3` fails before any work spawns.
  [[nodiscard]] static shard_spec parse(std::string_view text);

  [[nodiscard]] bool owns(std::uint64_t grid_index) const noexcept {
    return grid_index % count == index;
  }
  /// "i/N" display form.
  [[nodiscard]] std::string label() const;
};

/// Execution options of one scenario run (defaults reproduce the
/// historical single-process behavior exactly).
struct run_options {
  shard_spec shard;  ///< 0/1 = the whole grid

  /// When non-empty, one atomic JSON checkpoint file per completed grid
  /// point is written under this directory (plus a manifest tying the
  /// directory to the spec's canonical hash), and points with a valid
  /// checkpoint are loaded instead of re-run — a killed shard re-runs
  /// only missing or corrupt points on relaunch.
  std::string checkpoint_dir;

  /// When non-zero, stop after this many points have been *executed*
  /// (checkpoint-loaded points are free) — the controlled stand-in for
  /// a mid-sweep kill in crash-resume tests. The returned report covers
  /// only the points reached before the budget ran out.
  std::uint64_t max_points = 0;
};

/// All grid points of one scenario run.
struct scenario_report {
  json_value spec;  ///< normalized base spec (echoed for provenance)
  std::vector<scenario_point_result> points;
  std::uint64_t total_trials = 0;
  /// Resolved campaign worker count; 0 when no workload spawned a pool
  /// (analytic/fixture-only runs) — the ground truth bench telemetry
  /// reports instead of re-deriving the resolution policy.
  unsigned campaign_threads = 0;
  /// Points actually executed this run vs. loaded from checkpoint
  /// files (not serialized; run logs and resume tests read these).
  std::uint64_t executed_points = 0;
  std::uint64_t cached_points = 0;

  /// Deterministic JSON form: {"name", "spec", "results": [...]}.
  [[nodiscard]] json_value to_json() const;
};

/// Expands and executes one scenario.
class scenario_runner {
 public:
  /// Validates the spec eagerly: the workload and every scheme resolve
  /// (with their options) before any experiment runs, so spec typos
  /// fail in milliseconds, not after a sweep.
  explicit scenario_runner(scenario_spec spec);

  [[nodiscard]] const scenario_spec& spec() const noexcept { return spec_; }

  /// Number of grid points the sweep expands into.
  [[nodiscard]] std::uint64_t grid_size() const noexcept;

  /// Runs every grid point in order, streaming each point's text report
  /// to `text_out` (single-point runs print the bare workload text, so
  /// the legacy figure binaries stay byte-identical).
  [[nodiscard]] scenario_report run(std::ostream& text_out) const;

  /// Same, restricted to `options.shard`'s grid points, with optional
  /// per-point checkpointing and an executed-point budget. The default
  /// options are byte-identical to run(text_out).
  [[nodiscard]] scenario_report run(std::ostream& text_out,
                                    const run_options& options) const;

 private:
  scenario_spec spec_;
};

}  // namespace urmem
