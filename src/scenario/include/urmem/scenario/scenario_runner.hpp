// scenario_runner: the execution engine of the declarative scenario
// API. It expands a scenario_spec's sweep axes into their cartesian
// grid, runs the named workload at every grid point on a campaign pool
// seeded by the spec's seed policy, streams each point's human report
// to an output stream, and reduces the per-point JSON aggregates into
// one deterministic scenario report (what `urmem-run --out` writes and
// CI diffs against goldens).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "urmem/common/json.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/scenario/workload_registry.hpp"

namespace urmem {

/// One grid point's results.
struct scenario_point_result {
  std::string label;       ///< "pcell=0.001, nfm=2"; empty for the base point
  json_value assignments;  ///< object of the axis values this point took
  workload_output output;
};

/// All grid points of one scenario run.
struct scenario_report {
  json_value spec;  ///< normalized base spec (echoed for provenance)
  std::vector<scenario_point_result> points;
  std::uint64_t total_trials = 0;
  /// Resolved campaign worker count; 0 when no workload spawned a pool
  /// (analytic/fixture-only runs) — the ground truth bench telemetry
  /// reports instead of re-deriving the resolution policy.
  unsigned campaign_threads = 0;

  /// Deterministic JSON form: {"name", "spec", "results": [...]}.
  [[nodiscard]] json_value to_json() const;
};

/// Expands and executes one scenario.
class scenario_runner {
 public:
  /// Validates the spec eagerly: the workload and every scheme resolve
  /// (with their options) before any experiment runs, so spec typos
  /// fail in milliseconds, not after a sweep.
  explicit scenario_runner(scenario_spec spec);

  [[nodiscard]] const scenario_spec& spec() const noexcept { return spec_; }

  /// Number of grid points the sweep expands into.
  [[nodiscard]] std::uint64_t grid_size() const noexcept;

  /// Runs every grid point in order, streaming each point's text report
  /// to `text_out` (single-point runs print the bare workload text, so
  /// the legacy figure binaries stay byte-identical).
  [[nodiscard]] scenario_report run(std::ostream& text_out) const;

 private:
  scenario_spec spec_;
};

}  // namespace urmem
