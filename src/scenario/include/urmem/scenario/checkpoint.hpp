// Resumable per-point checkpoints for sharded sweep campaigns.
//
// A sharded campaign runs each grid point at most once and must survive
// being killed between points, so completed points are published as one
// atomic JSON file each (write-to-temp + rename, see common/fs.hpp)
// under a checkpoint directory that any number of shards may share:
//
//   DIR/manifest.json    {"schema", "spec_hash", "grid_size", "spec"}
//   DIR/point_000003.json one completed grid point, keyed by its
//                         expansion index and the spec's canonical hash
//
// Identity is the spec's canonical hash: a relaunched shard loads only
// checkpoints whose hash matches its spec (truncated or otherwise
// unparseable files count as missing and are re-run; a parseable
// checkpoint from a *different* spec is rejected loudly instead of
// silently recomputed). merge_checkpoints folds the point files of one
// or more directories back into the exact scenario_report an unsharded
// `urmem-run` would have produced — byte-identical at fixed seeds —
// and fails loudly on missing points, conflicting duplicates, or
// spec-hash mismatches. `urmem-merge` is a thin CLI over it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "urmem/common/json.hpp"
#include "urmem/scenario/scenario_runner.hpp"

namespace urmem {

/// Schema tag every checkpoint file and manifest carries.
inline constexpr std::string_view checkpoint_schema = "urmem-checkpoint/1";

/// Per-point checkpoint files of one campaign under one directory.
///
/// Thread-safety audit (no locks by design): the store is immutable
/// after construction (two const strings), so any number of threads —
/// and, more importantly, any number of *processes* (shards on separate
/// machines) — may use one directory concurrently. Mutual exclusion is
/// delegated to the filesystem: every publish is write-to-temp +
/// atomic rename, manifests of the same spec are byte-identical so
/// racing writers are idempotent, and readers treat a torn file as
/// missing. A mutex here could not order cross-process writers anyway;
/// the rename is the real synchronization point.
class checkpoint_store {
 public:
  /// `spec_hash` is scenario_spec::canonical_hash() of the campaign the
  /// directory belongs to; every read and write is keyed by it.
  checkpoint_store(std::string dir, std::string spec_hash);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const std::string& spec_hash() const noexcept {
    return spec_hash_;
  }
  [[nodiscard]] std::string manifest_path() const;
  [[nodiscard]] std::string point_path(std::uint64_t grid_index) const;

  /// Publishes DIR/manifest.json atomically (byte-identical across
  /// shards of the same spec, so concurrent writers are harmless).
  /// Throws spec_error("checkpoint-dir") when the directory already
  /// holds a manifest for a different spec hash — stale checkpoint
  /// directories are rejected, not silently overwritten.
  void write_manifest(const json_value& spec, std::uint64_t grid_size) const;

  /// Loads grid point `grid_index` if a valid checkpoint exists.
  /// Missing, truncated or otherwise unparseable files yield nullopt
  /// (the point is simply re-run); a well-formed checkpoint whose
  /// spec_hash differs throws spec_error (stale results must never be
  /// merged into a fresh campaign).
  [[nodiscard]] std::optional<scenario_point_result> load_point(
      std::uint64_t grid_index) const;

  /// Atomically publishes one completed grid point.
  void store_point(std::uint64_t grid_index, std::uint64_t grid_size,
                   const scenario_point_result& point) const;

 private:
  std::string dir_;
  std::string spec_hash_;
};

/// Folds the per-point checkpoint files of `dirs` (one shared directory
/// or one directory per shard) back into the report an unsharded run
/// would have produced: same spec echo, same point order, same trial
/// totals — to_json() is byte-identical at fixed seeds. Throws
/// spec_error on a missing or unreadable manifest, manifests that
/// disagree on the spec hash, missing grid points, corrupt point files,
/// point files from a different spec, or duplicate points whose
/// payloads conflict.
[[nodiscard]] scenario_report merge_checkpoints(
    const std::vector<std::string>& dirs);

}  // namespace urmem
