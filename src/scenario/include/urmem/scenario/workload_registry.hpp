// String-keyed registry of experiment workloads.
//
// A workload turns one resolved scenario point into results: it
// instantiates the spec's schemes through the scheme_registry, runs its
// experiment on the shared campaign pool, and returns both a
// human-readable text report (the exact stdout body the legacy figure
// binaries printed — those binaries are now thin wrappers over this
// API) and a deterministic JSON aggregate that scenario reports and CI
// goldens consume.
//
// Built-ins: fig5-mse, fig7-quality, table1-apps, psnr-image,
// ml-quality, bist-march, redundancy-yield, multifault-policy.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "urmem/common/json.hpp"
#include "urmem/scenario/scheme_registry.hpp"
#include "urmem/sim/campaign_runner.hpp"

namespace urmem {

/// One workload run's results.
struct workload_output {
  std::string text;      ///< human report: the stdout body
  json_value json;       ///< deterministic aggregates (golden-diffable)
  std::uint64_t trials = 0;  ///< campaign trials executed
};

/// Lazily-spawned campaign pool: workloads that never map a trial
/// (bist-march, redundancy-yield, fig5-mse --analytic, ...) cost no
/// thread start-up. The scenario runner keeps one pool alive across
/// grid points while its parameters are unchanged.
class campaign_pool {
 public:
  explicit campaign_pool(campaign_config config) : config_(config) {}

  [[nodiscard]] const campaign_config& config() const noexcept {
    return config_;
  }

  /// The pool, spawned on first use (prints the "campaign threads"
  /// scheduling diagnostic to stderr exactly once, on spawn).
  [[nodiscard]] campaign_runner& runner();

  /// Resolved worker count of the spawned pool; 0 while unspawned.
  [[nodiscard]] unsigned spawned_threads() const noexcept {
    return runner_.has_value() ? runner_->threads() : 0;
  }

 private:
  campaign_config config_;
  std::optional<campaign_runner> runner_;
};

/// One experiment kind, constructed with its (validated) options.
class workload {
 public:
  virtual ~workload() = default;

  /// Runs the experiment described by `spec`; campaign trials go on
  /// `pool.runner()` (seeded with spec.seeds.root by the scenario
  /// runner). Must be deterministic for a fixed spec at any thread
  /// count.
  [[nodiscard]] virtual workload_output run(const scenario_spec& spec,
                                            campaign_pool& pool) const = 0;
};

/// Registry of named workloads.
class workload_registry {
 public:
  using entry_factory =
      std::function<std::unique_ptr<workload>(const option_map&)>;

  struct entry_info {
    std::string name;
    std::string summary;
    std::string options_help;
  };

  /// The process-wide registry (built-ins registered on first call).
  [[nodiscard]] static workload_registry& instance();

  /// Registers a workload; throws std::invalid_argument on duplicates.
  void add(std::string name, std::string summary, std::string options_help,
           entry_factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Resolves the spec's workload entry; throws spec_error listing the
  /// known names when unknown, and for unknown/out-of-range options.
  [[nodiscard]] std::unique_ptr<workload> make(const workload_ref& ref) const;

  /// All entries, sorted by name (stable for --list-workloads goldens).
  [[nodiscard]] std::vector<entry_info> list() const;

 private:
  workload_registry() = default;

  struct entry {
    entry_info info;
    entry_factory factory;
  };
  std::vector<entry> entries_;
};

/// RAII helper mirroring scheme_registration.
struct workload_registration {
  workload_registration(std::string name, std::string summary,
                        std::string options_help,
                        workload_registry::entry_factory factory);
};

/// Resolves every scheme entry of `spec` through the scheme registry.
/// When the spec carries a `regions` section, the tiered recipe it
/// defines is appended as one extra comparison entry, so every
/// scheme-driven workload sees the heterogeneous design next to its
/// uniform baselines.
[[nodiscard]] std::vector<scheme_recipe> resolve_schemes(
    const scenario_spec& spec);

/// The tiered recipe of the spec's `regions` section alone (regions
/// must be non-empty) — what resolve_schemes appends.
[[nodiscard]] scheme_recipe resolve_region_recipe(const scenario_spec& spec);

/// Like resolve_schemes, but rejects recipes a pure word-transform
/// workload cannot serve (spare-row redundancy, region spare pools),
/// blaming the scheme entry and naming `workload_name` in the
/// diagnostic.
[[nodiscard]] std::vector<scheme_recipe> resolve_word_transform_schemes(
    const scenario_spec& spec, std::string_view workload_name);

/// Throws spec_error("schemes") / spec_error("regions") when the spec
/// names schemes (or reliability regions) that `workload_name` (a
/// fixture-building workload) would silently ignore.
void reject_schemes(const scenario_spec& spec, std::string_view workload_name);

/// Throws spec_error naming regions[i].pcell/vdd when any region
/// carries a fault operating-point override `workload_name` cannot
/// honor (stratified exact-N injectors, external voltage sweeps).
void reject_region_operating_points(const scenario_spec& spec,
                                    std::string_view workload_name);

namespace detail {
/// Built-in registration hooks (explicit calls, so static-library
/// linking cannot drop them).
void register_figure_workloads(workload_registry& registry);
void register_domain_workloads(workload_registry& registry);
void register_hrm_workloads(workload_registry& registry);
void register_lifecycle_workloads(workload_registry& registry);
}  // namespace detail

}  // namespace urmem
