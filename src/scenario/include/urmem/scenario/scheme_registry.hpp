// String-keyed registry of protection-scheme recipes.
//
// Every scheme a scenario can name — the paper's comparison set plus
// the stacked compositions and spare-row redundancy — registers here
// under a stable name. A recipe resolves (name, options, geometry) into
// a per-tile scheme_factory plus the tile-level parameters the factory
// alone cannot express (spare rows). Workloads instantiate schemes
// only through this registry, so adding a new protection technique is
// one registration away from every workload and sweep axis.
//
// Registration is explicit and fails loudly: registering a name twice
// throws, and resolving an unknown name raises a spec_error that lists
// the known names. Built-ins are registered on first use of
// instance(); out-of-module code extends the registry with a
// scheme_registration object in a TU its binary links.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "urmem/scenario/options.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/sim/memory_pipeline.hpp"

namespace urmem {

/// Resolved scheme entry: how to build one tile's scheme instance plus
/// the tile-level knobs that ride along.
struct scheme_recipe {
  std::string display_name;   ///< table/report label, e.g. "nFM=2"
  scheme_factory factory;     ///< fresh instance per tile of `rows` rows
  std::uint32_t spare_rows = 0;  ///< redundancy spares manufactured per tile
  /// Heterogeneous-reliability region table (tiered recipes only):
  /// ordered row ranges with their own spare pools, to be installed as
  /// protected_memory regions on every tile. Empty = homogeneous.
  std::vector<memory_region> regions;

  /// Total spares a tile of this recipe manufactures (pool or regions).
  [[nodiscard]] std::uint32_t total_spare_rows() const {
    std::uint32_t total = spare_rows;
    for (const memory_region& region : regions) total += region.spare_rows;
    return total;
  }
};

/// Registry of named scheme recipes.
class scheme_registry {
 public:
  /// Builds a recipe from validated options; consumed-key checking and
  /// the display name are handled by the registry.
  using entry_factory =
      std::function<scheme_recipe(const geometry_spec&, const option_map&)>;

  struct entry_info {
    std::string name;
    std::string summary;
    std::string options_help;  ///< e.g. "nfm=1 policy=min-mse"
  };

  /// The process-wide registry (built-ins registered on first call).
  [[nodiscard]] static scheme_registry& instance();

  /// Registers a recipe; throws std::invalid_argument when `name` is
  /// already taken (duplicate registrations are always a bug).
  void add(std::string name, std::string summary, std::string options_help,
           entry_factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Resolves a spec entry; throws spec_error (naming the entry's spec
  /// context and listing known names) for unknown schemes, and
  /// spec_error for unknown or out-of-range options.
  [[nodiscard]] scheme_recipe make(const scheme_ref& ref,
                                   const geometry_spec& geometry) const;

  /// All entries, sorted by name (stable for --list-schemes goldens).
  [[nodiscard]] std::vector<entry_info> list() const;

 private:
  scheme_registry() = default;

  struct entry {
    entry_info info;
    entry_factory factory;
  };
  std::vector<entry> entries_;
};

/// Validates the (word width, nFM) pair against bit_shuffler's
/// contract — power-of-two width in [2, 64], nfm in [1, log2(width)] —
/// throwing spec_error blaming `nfm_field` (or geometry.word_bits).
/// Shared by the shuffle registry entries and every workload that
/// builds its own shuffle fixture.
void validate_shuffle_design(const geometry_spec& geometry, unsigned nfm,
                             const std::string& nfm_field);

/// Resolves an ordered, geometry-covering region table into the tiered
/// combinator recipe: every region's scheme resolves through the
/// registry, the factory routes rows to per-tier instances, and the
/// recipe's region table carries each tier's spare pool (region spares
/// plus whatever the tier scheme itself asks for, e.g. a redundancy
/// tier). `context` prefixes diagnostics ("regions" for the spec
/// section, the scheme entry context for the compact `tiered:` form).
/// Nested tiered tiers are rejected.
[[nodiscard]] scheme_recipe make_tiered_recipe(
    const geometry_spec& geometry, const std::vector<region_spec>& regions,
    const std::string& context);

/// RAII helper: `static scheme_registration reg{"myscheme", ...};` in a
/// linked TU adds an out-of-module scheme before main runs.
struct scheme_registration {
  scheme_registration(std::string name, std::string summary,
                      std::string options_help,
                      scheme_registry::entry_factory factory);
};

}  // namespace urmem
