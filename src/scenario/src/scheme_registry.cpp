#include "urmem/scenario/scheme_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "urmem/scheme/protection_scheme.hpp"
#include "urmem/scheme/stacked_scheme.hpp"
#include "urmem/scheme/tiered_scheme.hpp"
#include "urmem/shuffle/shift_policy.hpp"

namespace urmem {

namespace {

shift_policy parse_policy(const option_map& options) {
  const std::string name = options.get_string("policy", "min-mse");
  if (name == "min-mse") return shift_policy::min_mse;
  if (name == "first-fault") return shift_policy::first_fault;
  throw spec_error(options.field_name("policy"),
                   "unknown shift policy \"" + name +
                       "\" (valid: min-mse, first-fault)");
}

unsigned parse_nfm(const option_map& options, const geometry_spec& geometry) {
  const unsigned nfm = options.get_u32("nfm", 1);
  validate_shuffle_design(geometry, nfm, options.field_name("nfm"));
  return nfm;
}

/// "nFM=k", with the non-default policy spelled out so two entries
/// differing only in policy stay distinguishable in tables and JSON.
std::string shuffle_label(unsigned nfm, shift_policy policy) {
  std::string label = "nFM=" + std::to_string(nfm);
  if (policy == shift_policy::first_fault) label += " (first-fault)";
  return label;
}

unsigned parse_protected_bits(const option_map& options,
                              const geometry_spec& geometry) {
  const unsigned width = geometry.word_bits;
  const unsigned protected_bits =
      options.get_u32("protected-bits", width / 2);
  if (protected_bits < 1 || protected_bits >= width) {
    throw spec_error(options.field_name("protected-bits"),
                     "must be in [1, " + std::to_string(width - 1) +
                         "], got " + std::to_string(protected_bits));
  }
  return protected_bits;
}

/// Display label = the instance's own name() (what the paper tables
/// use). Only cheap word-transform schemes go through here; recipes
/// whose instances carry per-row state (shuffle, stacked) compute their
/// label without building a throwaway rows-sized LUT.
scheme_recipe labelled(scheme_factory factory, std::uint32_t spare_rows = 0) {
  scheme_recipe recipe;
  // Row count is irrelevant to the name; 1 keeps the probe instance tiny.
  recipe.display_name = factory(1)->name();
  recipe.factory = std::move(factory);
  recipe.spare_rows = spare_rows;
  return recipe;
}

void register_builtin_schemes(scheme_registry& registry) {
  registry.add(
      "none", "unprotected pass-through storage (the paper's baseline)", "",
      [](const geometry_spec& geometry, const option_map&) {
        const unsigned width = geometry.word_bits;
        return labelled(
            [width](std::uint32_t) { return make_scheme_none(width); });
      });

  registry.add(
      "secded", "whole-word SECDED Hamming ECC — H(39,32) at 32 bits", "",
      [](const geometry_spec& geometry, const option_map&) {
        const unsigned width = geometry.word_bits;
        return labelled(
            [width](std::uint32_t) { return make_scheme_secded(width); });
      });

  registry.add(
      "hsiao",
      "whole-word Hsiao SEC-DED ECC (balanced odd-weight columns) — "
      "Hsiao(39,32) at 32 bits",
      "k=0 (auto-sized check bits)",
      [](const geometry_spec& geometry, const option_map& options) {
        const unsigned width = geometry.word_bits;
        const unsigned min_k = hsiao_code::min_check_bits(width);
        const unsigned k = options.get_u32("k", 0);
        if (k != 0 && (k < min_k || k > hsiao_code::max_check_bits)) {
          throw spec_error(options.field_name("k"),
                           "must be 0 (auto) or in [" + std::to_string(min_k) +
                               ", " + std::to_string(hsiao_code::max_check_bits) +
                               "] for " + std::to_string(width) +
                               "-bit words, got " + std::to_string(k));
        }
        if (width + (k == 0 ? min_k : k) > max_word_width) {
          throw spec_error("geometry.word_bits",
                           "hsiao codeword exceeds the 64-bit carrier at " +
                               std::to_string(width) + " data bits");
        }
        // One immutable codec (and its LUTs) serves every instance the
        // recipe builds: per-trial construction stays allocation-cheap.
        const auto code = std::make_shared<const hsiao_code>(width, k);
        return labelled(
            [code](std::uint32_t) { return std::make_unique<hsiao_scheme>(code); });
      });

  registry.add(
      "bch",
      "whole-word t-error-correcting BCH ECC, parity-extended — "
      "BCH(45,32,t=2) at 32 bits",
      "t=2",
      [](const geometry_spec& geometry, const option_map& options) {
        const unsigned width = geometry.word_bits;
        const unsigned t = options.get_u32("t", 2);
        if (t < 1 || t > bch_code::max_t) {
          throw spec_error(options.field_name("t"),
                           "must be in [1, " + std::to_string(bch_code::max_t) +
                               "], got " + std::to_string(t));
        }
        if (!bch_design_for(width, t).has_value()) {
          throw spec_error(options.field_name("t"),
                           "no BCH codeword fits the 64-bit carrier at " +
                               std::to_string(width) + " data bits with t=" +
                               std::to_string(t) +
                               " (t=2 supports up to 51, t=3 up to 45)");
        }
        // The dense correction table can run to megabytes: build it once
        // and share it immutably across every instance.
        const auto code = std::make_shared<const bch_code>(width, t);
        return labelled(
            [code](std::uint32_t) { return std::make_unique<bch_scheme>(code); });
      });

  registry.add(
      "pecc",
      "priority ECC over the MSB half — H(22,16) at 32 bits (Sec. 2 baseline)",
      "protected-bits=16",
      [](const geometry_spec& geometry, const option_map& options) {
        const unsigned width = geometry.word_bits;
        const unsigned protected_bits = parse_protected_bits(options, geometry);
        return labelled([width, protected_bits](std::uint32_t) {
          return make_scheme_pecc(width, protected_bits);
        });
      });

  registry.add(
      "shuffle",
      "the paper's significance-driven bit-shuffling (Sec. 3)",
      "nfm=1 policy=min-mse",
      [](const geometry_spec& geometry, const option_map& options) {
        const unsigned width = geometry.word_bits;
        const unsigned nfm = parse_nfm(options, geometry);
        const shift_policy policy = parse_policy(options);
        scheme_recipe recipe;
        recipe.display_name = shuffle_label(nfm, policy);
        recipe.factory = [width, nfm, policy](std::uint32_t rows) {
          return make_scheme_shuffle(rows, width, nfm, policy);
        };
        return recipe;
      });

  registry.add(
      "shuffle+secded",
      "stacked: bit-shuffle the word, then SECDED-encode it",
      "nfm=1 policy=min-mse",
      [](const geometry_spec& geometry, const option_map& options) {
        const unsigned width = geometry.word_bits;
        const unsigned nfm = parse_nfm(options, geometry);
        const shift_policy policy = parse_policy(options);
        scheme_recipe recipe;
        recipe.display_name =
            shuffle_label(nfm, policy) + "+" + secded_scheme(width).name();
        recipe.factory = [width, nfm, policy](std::uint32_t rows) {
          return make_scheme_stacked(rows, width, nfm,
                                     stacked_scheme::ecc_stage::secded, policy);
        };
        return recipe;
      });

  registry.add(
      "shuffle+pecc",
      "stacked: bit-shuffle the word, then priority-ECC-encode it",
      "nfm=1 policy=min-mse protected-bits=16",
      [](const geometry_spec& geometry, const option_map& options) {
        const unsigned width = geometry.word_bits;
        const unsigned nfm = parse_nfm(options, geometry);
        const shift_policy policy = parse_policy(options);
        const unsigned protected_bits = parse_protected_bits(options, geometry);
        scheme_recipe recipe;
        recipe.display_name = shuffle_label(nfm, policy) + "+" +
                              pecc_scheme(width, protected_bits).name();
        recipe.factory = [width, nfm, policy, protected_bits](std::uint32_t rows) {
          return make_scheme_stacked(rows, width, nfm,
                                     stacked_scheme::ecc_stage::pecc, policy,
                                     protected_bits);
        };
        return recipe;
      });

  registry.add(
      "tiered",
      "heterogeneous-reliability tiers: one scheme per row range (HRM)",
      "<first>-<last>=<scheme>[,opt=v...][,spare_rows=k] per range",
      [](const geometry_spec& geometry, const option_map& options) {
        // Every option key is a row range; its value is the tier's
        // scheme in comma-compact form, e.g.
        //   tiered:0-1023=secded,spare_rows=8:1024-4095=shuffle,nfm=2
        std::vector<region_spec> regions;
        std::vector<std::string> range_keys;  // original keys, for blame
        for (const auto& [key, raw] : options.entries()) {
          const std::string field = options.field_name(key);
          range_keys.push_back(key);
          region_spec region;
          const auto range = parse_row_range(field, key);
          region.first_row = range.first;
          region.last_row = range.second;
          const compact_region_value tokens =
              parse_compact_region_value(field, options.get_string(key, ""));
          if (tokens.pcell.has_value() || tokens.vdd.has_value()) {
            // A scheme recipe has no fault model to honor them with;
            // accepting-and-ignoring would be silently dead config.
            throw spec_error(field,
                             "per-region operating points (pcell/vdd) live in "
                             "the spec's regions section, not the tiered "
                             "scheme form");
          }
          region.spare_rows = tokens.spare_rows.value_or(0);
          region.scheme = parse_compact_scheme(tokens.scheme, field);
          regions.push_back(std::move(region));
        }
        if (regions.empty()) {
          throw spec_error(
              options.context().empty() ? "schemes" : options.context(),
              "tiered needs at least one <first>-<last>=<scheme> tier");
        }
        const std::string context =
            options.context().empty() ? "schemes" : options.context();
        // Pre-check here so the blame lands on the user's own option
        // key (make_tiered_recipe would name a synthesized index).
        if (const auto issue =
                find_region_table_issue(regions, geometry.rows_per_tile)) {
          throw spec_error(options.field_name(range_keys[issue->index]),
                           issue->message);
        }
        return make_tiered_recipe(geometry, regions, context);
      });

  registry.add(
      "redundancy",
      "classical spare-row repair (Sec. 2's dismissed alternative)",
      "spares=16",
      [](const geometry_spec& geometry, const option_map& options) {
        const std::uint32_t spares = options.get_u32("spares", 16);
        if (spares < 1 || spares > geometry.rows_per_tile) {
          throw spec_error(
              options.field_name("spares"),
              "must be in [1, rows_per_tile], got " + std::to_string(spares));
        }
        const unsigned width = geometry.word_bits;
        scheme_recipe recipe;
        recipe.display_name = "spare-rows(" + std::to_string(spares) + ")";
        recipe.factory = [width](std::uint32_t) {
          return make_scheme_none(width);
        };
        recipe.spare_rows = spares;
        return recipe;
      });
}

}  // namespace

void validate_shuffle_design(const geometry_spec& geometry, unsigned nfm,
                             const std::string& nfm_field) {
  // bit_shuffler enforces a power-of-two width and nfm in
  // [1, log2(width)]; pre-check both so the diagnostic names a spec
  // field instead of tripping a contract mid-run.
  if (geometry.word_bits < 2 ||
      (geometry.word_bits & (geometry.word_bits - 1)) != 0) {
    throw spec_error("geometry.word_bits",
                     "shuffle-based designs need a power-of-two word width "
                     "in [2, 64], got " +
                         std::to_string(geometry.word_bits));
  }
  unsigned log2_width = 0;
  while ((2u << log2_width) <= geometry.word_bits) ++log2_width;
  if (nfm < 1 || nfm > log2_width) {
    throw spec_error(nfm_field, "must be in [1, " + std::to_string(log2_width) +
                                    "] for " +
                                    std::to_string(geometry.word_bits) +
                                    "-bit words, got " + std::to_string(nfm));
  }
}

scheme_recipe make_tiered_recipe(const geometry_spec& geometry,
                                 const std::vector<region_spec>& regions,
                                 const std::string& context) {
  if (const auto issue = find_region_table_issue(regions, geometry.rows_per_tile)) {
    throw spec_error(context + "[" + std::to_string(issue->index) + "]." +
                         issue->member,
                     issue->message);
  }
  struct tier_plan {
    std::uint32_t first_row;
    std::uint32_t last_row;
    scheme_factory factory;
  };
  std::vector<tier_plan> plan;
  plan.reserve(regions.size());
  scheme_recipe recipe;
  recipe.display_name = "tiered[";
  unsigned storage_bits = 0;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const region_spec& region = regions[i];
    const std::string field = context + "[" + std::to_string(i) + "].scheme";
    if (region.scheme.name == "tiered") {
      throw spec_error(field, "tiers cannot nest another tiered scheme");
    }
    scheme_recipe sub =
        scheme_registry::instance().make(region.scheme, geometry);
    if (!sub.regions.empty()) {
      throw spec_error(field, "tier scheme '" + region.scheme.name +
                                  "' carries its own region table");
    }
    // The tier's storage width is row-count independent; a 1-row probe
    // avoids building a rows-sized LUT just to size the array.
    const unsigned tier_bits = sub.factory(1)->storage_bits();
    storage_bits = std::max(storage_bits, tier_bits);
    if (i != 0) recipe.display_name += "|";
    recipe.display_name += region.range_label() + ":" + sub.display_name;
    // The tier keeps its own pool: region spares plus whatever the tier
    // scheme itself manufactures (a redundancy tier's `spares`). The
    // tier's own storage width rides along so repair and reporting can
    // ignore faults in a wider sibling's surplus columns.
    recipe.regions.push_back(memory_region{region.first_row, region.last_row,
                                           region.spare_rows + sub.spare_rows,
                                           tier_bits});
    plan.push_back(tier_plan{region.first_row, region.last_row,
                             std::move(sub.factory)});
  }
  recipe.display_name += "]";
  recipe.factory = [plan = std::move(plan),
                    storage_bits](std::uint32_t rows) {
    // Probe instances may ask for fewer rows than the tiered design
    // covers (display/width probes): clamp tiers to [0, rows) and pin
    // the storage width to the full design's via the hint.
    std::vector<tiered_scheme::tier> tiers;
    for (const tier_plan& t : plan) {
      if (t.first_row >= rows) break;
      const std::uint32_t last = std::min(t.last_row, rows - 1);
      tiers.push_back(tiered_scheme::tier{
          t.first_row, last, t.factory(last - t.first_row + 1)});
    }
    return std::make_unique<tiered_scheme>(std::move(tiers), storage_bits);
  };
  return recipe;
}

scheme_registry& scheme_registry::instance() {
  static scheme_registry registry = [] {
    scheme_registry r;
    register_builtin_schemes(r);
    return r;
  }();
  return registry;
}

void scheme_registry::add(std::string name, std::string summary,
                          std::string options_help, entry_factory factory) {
  if (contains(name)) {
    throw std::invalid_argument("scheme registry: name '" + name +
                                "' is already registered");
  }
  entries_.push_back(
      {{std::move(name), std::move(summary), std::move(options_help)},
       std::move(factory)});
}

bool scheme_registry::contains(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const entry& e) {
    return e.info.name == name;
  });
}

scheme_recipe scheme_registry::make(const scheme_ref& ref,
                                    const geometry_spec& geometry) const {
  for (const entry& e : entries_) {
    if (e.info.name != ref.name) continue;
    scheme_recipe recipe = e.factory(geometry, ref.options);
    ref.options.check_consumed();
    return recipe;
  }
  std::string known;
  for (const entry_info& info : list()) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  const std::string context =
      ref.options.context().empty() ? "schemes" : ref.options.context();
  throw spec_error(context,
                   "unknown scheme '" + ref.name + "' (known: " + known + ")");
}

std::vector<scheme_registry::entry_info> scheme_registry::list() const {
  std::vector<entry_info> infos;
  infos.reserve(entries_.size());
  for (const entry& e : entries_) infos.push_back(e.info);
  std::sort(infos.begin(), infos.end(),
            [](const entry_info& a, const entry_info& b) { return a.name < b.name; });
  return infos;
}

scheme_registration::scheme_registration(std::string name, std::string summary,
                                         std::string options_help,
                                         scheme_registry::entry_factory factory) {
  scheme_registry::instance().add(std::move(name), std::move(summary),
                                  std::move(options_help), std::move(factory));
}

}  // namespace urmem
