#include "urmem/scenario/scenario_runner.hpp"

#include <algorithm>
#include <iostream>
#include <memory>
#include <ostream>
#include <utility>

namespace urmem {

namespace {

/// Applies one grid combination onto a copy of the base document.
json_value point_document(const json_value& base,
                          const std::vector<sweep_axis>& axes,
                          const std::vector<std::size_t>& combo) {
  json_value doc = base;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    try {
      doc.set_path(axes[i].param, axes[i].values[combo[i]]);
    } catch (const json_type_error& error) {
      throw spec_error("sweep", "axis '" + axes[i].param +
                                    "' does not address a settable field (" +
                                    error.what() + ")");
    }
  }
  return doc;
}

}  // namespace

scenario_runner::scenario_runner(scenario_spec spec) : spec_(std::move(spec)) {
  // Fail fast on unresolvable names/options: instantiate the workload
  // and resolve every scheme once before any trial runs. (Workload
  // construction also consumes its options, so unknown workload keys
  // surface here too.)
  (void)workload_registry::instance().make(spec_.workload);
  (void)resolve_schemes(spec_);
}

std::uint64_t scenario_runner::grid_size() const noexcept {
  std::uint64_t points = 1;
  for (const sweep_axis& axis : spec_.sweep) points *= axis.values.size();
  return points;
}

scenario_report scenario_runner::run(std::ostream& text_out) const {
  // The base document carries everything but the sweep; each grid point
  // re-parses its overridden copy so axis paths get exactly the same
  // validation (and field-naming diagnostics) as hand-written specs.
  json_value base = spec_.to_json();
  if (base.find("sweep") != nullptr) {
    auto& members = base.as_object();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == "sweep") {
        members.erase(members.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }

  scenario_report report;
  report.spec = spec_.to_json();

  const std::vector<sweep_axis>& axes = spec_.sweep;
  std::vector<std::size_t> combo(axes.size(), 0);
  const bool multi_point = grid_size() > 1;
  // unique_ptr rather than optional: GCC 12's -Wmaybe-uninitialized
  // misfires on optional<campaign_pool> (it nests another optional).
  std::unique_ptr<campaign_pool> pool;

  while (true) {
    const json_value doc = point_document(base, axes, combo);
    const scenario_spec point_spec = scenario_spec::from_json(doc);

    scenario_point_result point;
    point.assignments = json_value::make_object();
    for (std::size_t i = 0; i < axes.size(); ++i) {
      point.assignments.set(axes[i].param, axes[i].values[combo[i]]);
      if (!point.label.empty()) point.label += ", ";
      point.label += axes[i].param + "=" + axes[i].values[combo[i]].dump(0);
    }

    const std::unique_ptr<workload> job =
        workload_registry::instance().make(point_spec.workload);
    // One persistent (lazily-spawned) pool serves the whole grid; it is
    // only rebuilt when a sweep axis changes the pool's own parameters
    // (seed, threads, batch) — spawning threads per point would waste
    // start-up on every grid step, and workloads that never map a trial
    // never spawn it at all.
    const campaign_config wanted{.threads = point_spec.run.threads,
                                 .batch_size = point_spec.run.batch,
                                 .seed = point_spec.seeds.root};
    if (pool == nullptr || pool->config().threads != wanted.threads ||
        pool->config().batch_size != wanted.batch_size ||
        pool->config().seed != wanted.seed) {
      pool = std::make_unique<campaign_pool>(wanted);
    }
    if (multi_point) std::cerr << "point: " << point.label << "\n";

    point.output = job->run(point_spec, *pool);
    report.total_trials += point.output.trials;
    report.campaign_threads =
        std::max(report.campaign_threads, pool->spawned_threads());

    if (multi_point) text_out << "== " << point.label << " ==\n";
    text_out << point.output.text;
    if (multi_point) text_out << "\n";
    text_out.flush();
    report.points.push_back(std::move(point));

    // Advance the mixed-radix grid counter (last axis fastest).
    std::size_t axis = axes.size();
    while (axis > 0) {
      --axis;
      if (++combo[axis] < axes[axis].values.size()) break;
      combo[axis] = 0;
      if (axis == 0) return report;
    }
    if (axes.empty()) return report;
  }
}

json_value scenario_report::to_json() const {
  json_value doc = json_value::make_object();
  const json_value* name = spec.find("name");
  doc.set("name", name != nullptr ? *name : json_value("scenario"));
  doc.set("spec", spec);
  doc.set("total_trials", total_trials);
  json_value results = json_value::make_array();
  for (const scenario_point_result& point : points) {
    json_value entry = json_value::make_object();
    if (!point.label.empty()) entry.set("point", point.label);
    entry.set("assignments", point.assignments);
    entry.set("trials", point.output.trials);
    entry.set("data", point.output.json);
    results.push_back(std::move(entry));
  }
  doc.set("results", std::move(results));
  return doc;
}

}  // namespace urmem
