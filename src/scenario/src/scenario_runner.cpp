#include "urmem/scenario/scenario_runner.hpp"

#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <ostream>
#include <utility>

#include "urmem/scenario/checkpoint.hpp"

namespace urmem {

namespace {

/// Applies one grid combination onto a copy of the base document.
json_value point_document(const json_value& base,
                          const std::vector<sweep_axis>& axes,
                          const std::vector<std::size_t>& combo) {
  json_value doc = base;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    try {
      doc.set_path(axes[i].param, axes[i].values[combo[i]]);
    } catch (const json_type_error& error) {
      throw spec_error("sweep", "axis '" + axes[i].param +
                                    "' does not address a settable field (" +
                                    error.what() + ")");
    }
  }
  return doc;
}

}  // namespace

shard_spec shard_spec::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos || text.find('/', slash + 1) !=
                                             std::string_view::npos) {
    throw spec_error("shard", "expected INDEX/COUNT (e.g. 0/4), got '" +
                                  std::string(text) + "'");
  }
  shard_spec shard;
  shard.index = parse_spec_u64("shard", text.substr(0, slash));
  shard.count = parse_spec_u64("shard", text.substr(slash + 1));
  if (shard.count == 0) {
    throw spec_error("shard", "count must be at least 1, got '" +
                                  std::string(text) + "'");
  }
  if (shard.index >= shard.count) {
    throw spec_error("shard", "index must be below the count, got '" +
                                  std::string(text) + "'");
  }
  return shard;
}

std::string shard_spec::label() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

scenario_runner::scenario_runner(scenario_spec spec) : spec_(std::move(spec)) {
  // Fail fast on unresolvable names/options: instantiate the workload
  // and resolve every scheme once before any trial runs. (Workload
  // construction also consumes its options, so unknown workload keys
  // surface here too.)
  (void)workload_registry::instance().make(spec_.workload);
  (void)resolve_schemes(spec_);
}

std::uint64_t scenario_runner::grid_size() const noexcept {
  std::uint64_t points = 1;
  for (const sweep_axis& axis : spec_.sweep) points *= axis.values.size();
  return points;
}

scenario_report scenario_runner::run(std::ostream& text_out) const {
  return run(text_out, run_options{});
}

scenario_report scenario_runner::run(std::ostream& text_out,
                                     const run_options& options) const {
  if (options.shard.count == 0 || options.shard.index >= options.shard.count) {
    throw spec_error("shard", "index must be below the count, got '" +
                                  options.shard.label() + "'");
  }

  // The base document carries everything but the sweep; each grid point
  // re-parses its overridden copy so axis paths get exactly the same
  // validation (and field-naming diagnostics) as hand-written specs.
  json_value base = spec_.to_json();
  if (base.find("sweep") != nullptr) {
    auto& members = base.as_object();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == "sweep") {
        members.erase(members.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }

  scenario_report report;
  report.spec = spec_.to_json();

  // Checkpointing keys every file to the canonical spec hash, so a
  // relaunched shard resumes exactly this campaign or fails loudly.
  std::optional<checkpoint_store> store;
  if (!options.checkpoint_dir.empty()) {
    store.emplace(options.checkpoint_dir, spec_.canonical_hash());
    store->write_manifest(report.spec, grid_size());
  }

  const std::vector<sweep_axis>& axes = spec_.sweep;
  const std::uint64_t total_points = grid_size();
  const bool multi_point = total_points > 1;
  // unique_ptr rather than optional: GCC 12's -Wmaybe-uninitialized
  // misfires on optional<campaign_pool> (it nests another optional).
  std::unique_ptr<campaign_pool> pool;

  for (std::uint64_t grid_index = 0; grid_index < total_points; ++grid_index) {
    if (!options.shard.owns(grid_index)) continue;

    if (store.has_value()) {
      if (std::optional<scenario_point_result> cached =
              store->load_point(grid_index)) {
        std::cerr << "point cached: "
                  << (cached->label.empty() ? std::to_string(grid_index)
                                            : cached->label)
                  << "\n";
        report.total_trials += cached->output.trials;
        ++report.cached_points;
        report.points.push_back(std::move(*cached));
        continue;
      }
    }

    // Mixed-radix digits of grid_index (last axis fastest) — the same
    // expansion order the sequential walk has always used, so shard 0/1
    // is byte-identical to an unsharded run.
    std::vector<std::size_t> combo(axes.size(), 0);
    std::uint64_t rest = grid_index;
    for (std::size_t axis = axes.size(); axis > 0;) {
      --axis;
      const std::uint64_t size = axes[axis].values.size();
      combo[axis] = static_cast<std::size_t>(rest % size);
      rest /= size;
    }

    const json_value doc = point_document(base, axes, combo);
    const scenario_spec point_spec = scenario_spec::from_json(doc);

    scenario_point_result point;
    point.assignments = json_value::make_object();
    for (std::size_t i = 0; i < axes.size(); ++i) {
      point.assignments.set(axes[i].param, axes[i].values[combo[i]]);
      if (!point.label.empty()) point.label += ", ";
      point.label += axes[i].param + "=" + axes[i].values[combo[i]].dump(0);
    }

    const std::unique_ptr<workload> job =
        workload_registry::instance().make(point_spec.workload);
    // One persistent (lazily-spawned) pool serves the whole grid; it is
    // only rebuilt when a sweep axis changes the pool's own parameters
    // (seed, threads, batch) — spawning threads per point would waste
    // start-up on every grid step, and workloads that never map a trial
    // never spawn it at all.
    const campaign_config wanted{.threads = point_spec.run.threads,
                                 .batch_size = point_spec.run.batch,
                                 .seed = point_spec.seeds.root};
    if (pool == nullptr || pool->config().threads != wanted.threads ||
        pool->config().batch_size != wanted.batch_size ||
        pool->config().seed != wanted.seed) {
      pool = std::make_unique<campaign_pool>(wanted);
    }
    if (multi_point) std::cerr << "point: " << point.label << "\n";

    point.output = job->run(point_spec, *pool);
    report.total_trials += point.output.trials;
    report.campaign_threads =
        std::max(report.campaign_threads, pool->spawned_threads());
    ++report.executed_points;
    // Publish before the budget check: a killed-or-budgeted shard keeps
    // every point it finished.
    if (store.has_value()) store->store_point(grid_index, total_points, point);

    if (multi_point) text_out << "== " << point.label << " ==\n";
    text_out << point.output.text;
    if (multi_point) text_out << "\n";
    text_out.flush();
    report.points.push_back(std::move(point));

    // Owned points are exactly the indices congruent to shard.index, so
    // the next one is `count` steps away.
    if (options.max_points != 0 &&
        report.executed_points >= options.max_points &&
        grid_index + options.shard.count < total_points) {
      std::cerr << "point budget reached: stopping after "
                << report.executed_points << " executed point(s)\n";
      break;
    }
  }
  return report;
}

json_value scenario_report::to_json() const {
  json_value doc = json_value::make_object();
  const json_value* name = spec.find("name");
  doc.set("name", name != nullptr ? *name : json_value("scenario"));
  doc.set("spec", spec);
  doc.set("total_trials", total_trials);
  json_value results = json_value::make_array();
  for (const scenario_point_result& point : points) {
    json_value entry = json_value::make_object();
    if (!point.label.empty()) entry.set("point", point.label);
    entry.set("assignments", point.assignments);
    entry.set("trials", point.output.trials);
    entry.set("data", point.output.json);
    results.push_back(std::move(entry));
  }
  doc.set("results", std::move(results));
  return doc;
}

}  // namespace urmem
