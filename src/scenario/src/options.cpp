#include "urmem/scenario/options.hpp"

#include <charconv>
#include <cmath>

namespace urmem {

spec_error::spec_error(std::string field, std::string_view message)
    : std::runtime_error("scenario spec field '" + field + "': " +
                         std::string(message)),
      field_(std::move(field)) {}

double parse_spec_double(std::string_view field, std::string_view text) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw spec_error(std::string(field),
                     "expected a number, got \"" + std::string(text) + "\"");
  }
  return value;
}

std::uint64_t parse_spec_u64(std::string_view field, std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw spec_error(
        std::string(field),
        "expected an unsigned integer, got \"" + std::string(text) + "\"");
  }
  return value;
}

void option_map::set(std::string_view key, std::string_view value) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == key) {
      entries_[i].second = value;
      return;
    }
  }
  entries_.emplace_back(std::string(key), std::string(value));
  consumed_.push_back(false);
}

bool option_map::has(std::string_view key) const { return raw(key) != nullptr; }

const std::string* option_map::raw(std::string_view key) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first == key) {
      consumed_[i] = true;
      return &entries_[i].second;
    }
  }
  return nullptr;
}

std::string option_map::get_string(std::string_view key,
                                   std::string_view fallback) const {
  const std::string* value = raw(key);
  return value != nullptr ? *value : std::string(fallback);
}

std::uint64_t option_map::get_u64(std::string_view key,
                                  std::uint64_t fallback) const {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  // "1e7"-style counts are accepted (spec files inherit them from the
  // paper's Trun notation) as long as they are exactly integral. Range
  // checks come BEFORE the cast: float-to-unsigned conversion of a
  // negative or >= 2^64 double is undefined behavior.
  if (value->find_first_of(".eE") != std::string::npos) {
    const double d = parse_spec_double(field_name(key), *value);
    if (d < 0.0 || d >= 1.8446744073709552e19 || std::floor(d) != d) {
      throw spec_error(field_name(key),
                       "expected an unsigned integer, got \"" + *value + "\"");
    }
    return static_cast<std::uint64_t>(d);
  }
  return parse_spec_u64(field_name(key), *value);
}

std::uint32_t option_map::get_u32(std::string_view key,
                                  std::uint32_t fallback) const {
  const std::uint64_t value = get_u64(key, fallback);
  if (value > 0xFFFFFFFFull) {
    throw spec_error(field_name(key),
                     "must fit in 32 bits, got " + std::to_string(value));
  }
  return static_cast<std::uint32_t>(value);
}

double option_map::get_double(std::string_view key, double fallback) const {
  const std::string* value = raw(key);
  return value != nullptr ? parse_spec_double(field_name(key), *value) : fallback;
}

bool option_map::get_bool(std::string_view key, bool fallback) const {
  const std::string* value = raw(key);
  if (value == nullptr) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  throw spec_error(field_name(key),
                   "expected a boolean, got \"" + *value + "\"");
}

std::vector<std::string> split_csv(std::string_view text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view item = comma == std::string_view::npos
                                      ? text.substr(start)
                                      : text.substr(start, comma - start);
    if (!item.empty()) items.emplace_back(item);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return items;
}

std::vector<std::string> option_map::get_list(std::string_view key,
                                              std::string_view fallback) const {
  const std::string* value = raw(key);
  return split_csv(value != nullptr ? *value : fallback);
}

std::vector<double> option_map::get_double_list(std::string_view key,
                                                std::string_view fallback) const {
  std::vector<double> values;
  for (const std::string& item : get_list(key, fallback)) {
    values.push_back(parse_spec_double(field_name(key), item));
  }
  return values;
}

std::string option_map::field_name(std::string_view key) const {
  if (context_.empty()) return std::string(key);
  std::string field = context_;
  field += '.';
  field += key;
  return field;
}

void option_map::check_consumed() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!consumed_[i]) {
      throw spec_error(field_name(entries_[i].first), "unknown field");
    }
  }
}

}  // namespace urmem
