#include "urmem/scenario/scenario_spec.hpp"

#include <utility>

#include "urmem/common/hash.hpp"

namespace urmem {

namespace {

/// Top-level shorthands for the most common flags — applied to override
/// keys, spec-file sweep axis params, and CLI `sweep.<param>` overrides.
std::string_view resolve_spec_alias(std::string_view key) {
  if (key == "seed") return "seeds.root";
  if (key == "threads") return "run.threads";
  if (key == "batch") return "run.batch";
  if (key == "pcell") return "fault.pcell";
  if (key == "vdd") return "fault.vdd";
  if (key == "polarity") return "fault.polarity";
  if (key == "rows") return "geometry.rows_per_tile";
  return key;
}

/// Canonical string form of a scalar spec value (what option_map stores).
std::string scalar_to_string(const std::string& field, const json_value& value) {
  switch (value.type()) {
    case json_value::kind::string: return value.as_string();
    case json_value::kind::number:
    case json_value::kind::boolean: return value.dump(0);
    default:
      throw spec_error(field, "expected a scalar (string, number or boolean)");
  }
}

/// "name:key=value:key=value" compact entry form -> (name, options).
void parse_compact_entry(std::string_view text, const std::string& context,
                         std::string& name, option_map& options) {
  options = option_map(context);
  std::size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    const std::size_t colon = text.find(':', start);
    const std::string_view token = colon == std::string_view::npos
                                       ? text.substr(start)
                                       : text.substr(start, colon - start);
    if (first) {
      name = std::string(token);
      first = false;
    } else if (!token.empty()) {
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos) {
        throw spec_error(context, "expected key=value after ':', got \"" +
                                      std::string(token) + "\"");
      }
      options.set(token.substr(0, eq), token.substr(eq + 1));
    }
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  if (name.empty()) throw spec_error(context, "entry name must not be empty");
}

/// Scheme/workload entry: compact string or {"name": ..., <options>...}.
void parse_entry(const json_value& value, const std::string& context,
                 std::string& name, option_map& options) {
  if (value.is_string()) {
    parse_compact_entry(value.as_string(), context, name, options);
    return;
  }
  if (!value.is_object()) {
    throw spec_error(context, "expected a name string or an object");
  }
  options = option_map(context);
  name.clear();
  for (const auto& [key, member] : value.as_object()) {
    if (key == "name") {
      if (!member.is_string()) {
        throw spec_error(context + ".name", "expected a string");
      }
      name = member.as_string();
    } else {
      options.set(key, scalar_to_string(context + "." + key, member));
    }
  }
  if (name.empty()) {
    throw spec_error(context + ".name", "entry needs a non-empty name");
  }
}

/// Emits an option value in its natural JSON type (number / bool when
/// the stored string parses as one, string otherwise).
json_value option_value_to_json(const std::string& text) {
  if (text == "true") return json_value(true);
  if (text == "false") return json_value(false);
  if (!text.empty()) {
    try {
      json_value scalar = json_value::parse(text);
      if (scalar.is_number()) return scalar;
    } catch (const json_parse_error&) {
      // fall through to string
    }
  }
  return json_value(text);
}

json_value entry_to_json(const std::string& name, const option_map& options) {
  json_value entry = json_value::make_object();
  entry.set("name", name);
  for (const auto& [key, value] : options.entries()) {
    entry.set(key, option_value_to_json(value));
  }
  return entry;
}

double get_number(const json_value& value, const std::string& field) {
  if (!value.is_number()) throw spec_error(field, "expected a number");
  return value.as_double();
}

std::uint64_t get_u64_checked(const json_value& value, const std::string& field) {
  try {
    return value.as_u64();
  } catch (const json_type_error& error) {
    throw spec_error(field, error.what());
  }
}

const std::string& get_string_checked(const json_value& value,
                                      const std::string& field) {
  if (!value.is_string()) throw spec_error(field, "expected a string");
  return value.as_string();
}

const json_value& get_object_checked(const json_value& value,
                                     const std::string& field) {
  if (!value.is_object()) throw spec_error(field, "expected an object");
  return value;
}

unsigned get_bounded_unsigned(const json_value& value, const std::string& field,
                              std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t v = get_u64_checked(value, field);
  if (v < lo || v > hi) {
    throw spec_error(field, "must be in [" + std::to_string(lo) + ", " +
                                std::to_string(hi) + "], got " +
                                std::to_string(v));
  }
  return static_cast<unsigned>(v);
}

void parse_geometry(const json_value& doc, geometry_spec& geometry) {
  for (const auto& [key, value] : doc.as_object()) {
    const std::string field = "geometry." + key;
    if (key == "rows_per_tile") {
      geometry.rows_per_tile =
          get_bounded_unsigned(value, field, 1, 1u << 22);
    } else if (key == "word_bits") {
      geometry.word_bits = get_bounded_unsigned(value, field, 1, 64);
    } else if (key == "frac_bits") {
      geometry.frac_bits = get_bounded_unsigned(value, field, 0, 63);
    } else {
      throw spec_error(field, "unknown field");
    }
  }
  if (geometry.frac_bits >= geometry.word_bits) {
    throw spec_error("geometry.frac_bits",
                     "must be smaller than geometry.word_bits (" +
                         std::to_string(geometry.word_bits) + "), got " +
                         std::to_string(geometry.frac_bits));
  }
}

/// Shared range checks for the spec-level and per-region operating
/// points; presence is explicit, so 0 is a valid (fault-free) Pcell.
double checked_pcell(const json_value& value, const std::string& field) {
  const double pcell = get_number(value, field);
  if (pcell < 0.0 || pcell >= 1.0) {
    throw spec_error(field, "must be in [0, 1), got " + value.dump(0));
  }
  return pcell;
}

double checked_vdd(const json_value& value, const std::string& field) {
  const double vdd = get_number(value, field);
  if (vdd <= 0.0 || vdd > 2.0) {
    throw spec_error(field, "must be in (0, 2] volts, got " + value.dump(0));
  }
  return vdd;
}

void parse_fault(const json_value& doc, fault_spec& fault) {
  for (const auto& [key, value] : doc.as_object()) {
    const std::string field = "fault." + key;
    if (key == "pcell") {
      fault.pcell = checked_pcell(value, field);
    } else if (key == "vdd") {
      fault.vdd = checked_vdd(value, field);
    } else if (key == "polarity") {
      const std::string name = get_string_checked(value, field);
      const auto polarity = parse_fault_polarity(name);
      if (!polarity.has_value()) {
        throw spec_error(field, "unknown polarity \"" + name +
                                    "\" (valid: flip, random-stuck, mixed)");
      }
      fault.polarity = *polarity;
    } else if (key == "vcrit_mean") {
      fault.vcrit_mean = get_number(value, field);
      if (fault.vcrit_mean < 0.0 || fault.vcrit_mean > 2.0) {
        throw spec_error(field, "must be in [0, 2] volts, got " + value.dump(0));
      }
    } else if (key == "vcrit_sigma") {
      fault.vcrit_sigma = get_number(value, field);
      if (fault.vcrit_sigma < 0.0 || fault.vcrit_sigma > 1.0) {
        throw spec_error(field, "must be in [0, 1] volts, got " + value.dump(0));
      }
    } else if (key == "model_seed") {
      fault.model_seed = get_u64_checked(value, field);
    } else if (key == "age_hours") {
      fault.age_hours = get_number(value, field);
      if (fault.age_hours < 0.0 || fault.age_hours > 1e9) {
        throw spec_error(field, "must be in [0, 1e9] hours, got " + value.dump(0));
      }
    } else {
      throw spec_error(field, "unknown field");
    }
  }
}

void parse_scrub(const json_value& doc, scrub_spec& scrub) {
  for (const auto& [key, value] : doc.as_object()) {
    const std::string field = "scrub." + key;
    if (key == "interval") {
      scrub.interval = get_bounded_unsigned(value, field, 0, 1u << 22);
    } else if (key == "rows_per_pass") {
      scrub.rows_per_pass = get_bounded_unsigned(value, field, 0, 1u << 22);
    } else if (key == "retire_correctable") {
      if (!value.is_bool()) throw spec_error(field, "expected a boolean");
      scrub.retire_correctable = value.as_bool();
    } else {
      throw spec_error(field, "unknown field");
    }
  }
}

void parse_retire(const json_value& doc, retire_spec& retire) {
  for (const auto& [key, value] : doc.as_object()) {
    const std::string field = "retire." + key;
    if (key == "policy") {
      const std::string name = get_string_checked(value, field);
      const auto policy = parse_degrade_policy(name);
      if (!policy.has_value()) {
        throw spec_error(field, "unknown policy \"" + name +
                                    "\" (valid: mark, remap, failstop)");
      }
      retire.policy = *policy;
    } else if (key == "max_retries") {
      retire.max_retries = get_bounded_unsigned(value, field, 0, 100);
    } else if (key == "spare_rows") {
      retire.spare_rows = get_bounded_unsigned(value, field, 0, 1u << 22);
    } else if (key == "reliable_region") {
      // Checked against the actual region count at workload-build time;
      // the region table may not even be parsed yet here.
      retire.reliable_region = get_bounded_unsigned(value, field, 0, 255);
    } else {
      throw spec_error(field, "unknown field");
    }
  }
}

void parse_serve(const json_value& doc, serve_spec& serve) {
  for (const auto& [key, value] : doc.as_object()) {
    const std::string field = "serve." + key;
    if (key == "clients") {
      serve.clients = get_bounded_unsigned(value, field, 1, 4096);
    } else if (key == "requests") {
      serve.requests = get_u64_checked(value, field);
    } else if (key == "requests_per_epoch") {
      serve.requests_per_epoch = get_u64_checked(value, field);
    } else if (key == "store_percent") {
      serve.store_percent = get_bounded_unsigned(value, field, 0, 100);
    } else if (key == "quality_percent") {
      serve.quality_percent = get_bounded_unsigned(value, field, 0, 100);
    } else if (key == "initial_faults") {
      serve.initial_faults = get_u64_checked(value, field);
    } else if (key == "arrivals_per_epoch") {
      serve.arrivals_per_epoch = get_bounded_unsigned(value, field, 0, 1u << 22);
    } else if (key == "intermittent_cells") {
      serve.intermittent_cells = get_bounded_unsigned(value, field, 0, 1u << 22);
    } else {
      throw spec_error(field, "unknown field");
    }
  }
  if (serve.store_percent + serve.quality_percent > 100) {
    throw spec_error("serve.store_percent",
                     "store_percent + quality_percent must not exceed 100");
  }
}

void parse_seeds(const json_value& doc, seed_spec& seeds) {
  for (const auto& [key, value] : doc.as_object()) {
    const std::string field = "seeds." + key;
    if (key == "root") {
      seeds.root = get_u64_checked(value, field);
    } else if (key == "app") {
      seeds.app = get_u64_checked(value, field);
    } else {
      throw spec_error(field, "unknown field");
    }
  }
}

void parse_run(const json_value& doc, run_spec& run) {
  for (const auto& [key, value] : doc.as_object()) {
    const std::string field = "run." + key;
    if (key == "threads") {
      run.threads = get_bounded_unsigned(value, field, 0, 4096);
    } else if (key == "batch") {
      run.batch = get_u64_checked(value, field);
    } else {
      throw spec_error(field, "unknown field");
    }
  }
}

void parse_sweep(const json_value& doc, std::vector<sweep_axis>& sweep) {
  const auto& axes = doc.as_array();
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const std::string context = "sweep[" + std::to_string(i) + "]";
    if (!axes[i].is_object()) throw spec_error(context, "expected an object");
    sweep_axis axis;
    for (const auto& [key, value] : axes[i].as_object()) {
      const std::string field = context + "." + key;
      if (key == "param") {
        axis.param = std::string(
            resolve_spec_alias(get_string_checked(value, field)));
      } else if (key == "values") {
        if (!value.is_array()) throw spec_error(field, "expected an array");
        for (const json_value& v : value.as_array()) {
          if (!v.is_number() && !v.is_string() && !v.is_bool()) {
            throw spec_error(field, "sweep values must be scalars");
          }
          axis.values.push_back(v);
        }
      } else {
        throw spec_error(field, "unknown field");
      }
    }
    if (axis.param.empty()) throw spec_error(context + ".param", "must be set");
    if (axis.values.empty()) {
      throw spec_error(context + ".values", "needs at least one value");
    }
    sweep.push_back(std::move(axis));
  }
}

void parse_regions(const json_value& doc, std::vector<region_spec>& regions) {
  const auto& entries = doc.as_array();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string context = "regions[" + std::to_string(i) + "]";
    if (!entries[i].is_object()) throw spec_error(context, "expected an object");
    region_spec region;
    region.scheme.options = option_map(context + ".scheme");
    bool have_rows = false;
    for (const auto& [key, value] : entries[i].as_object()) {
      const std::string field = context + "." + key;
      if (key == "rows") {
        const auto range =
            parse_row_range(field, get_string_checked(value, field));
        region.first_row = range.first;
        region.last_row = range.second;
        have_rows = true;
      } else if (key == "scheme") {
        parse_entry(value, context + ".scheme", region.scheme.name,
                    region.scheme.options);
      } else if (key == "spare_rows") {
        region.spare_rows = get_bounded_unsigned(value, field, 0, 1u << 22);
      } else if (key == "pcell") {
        region.pcell = checked_pcell(value, field);
      } else if (key == "vdd") {
        region.vdd = checked_vdd(value, field);
      } else {
        throw spec_error(field, "unknown field");
      }
    }
    if (!have_rows) {
      throw spec_error(context + ".rows", "region needs a \"rows\": \"a-b\" range");
    }
    if (region.scheme.name.empty()) {
      throw spec_error(context + ".scheme", "region needs a scheme entry");
    }
    regions.push_back(std::move(region));
  }
}

/// Validates every sweep axis against the just-parsed spec: each axis
/// value is applied onto the (sweep-free) base document and reparsed,
/// so bad dotted paths and out-of-range values surface here — before
/// any pool spawns or partial output is written — naming the axis.
void validate_sweep_axes(const scenario_spec& spec) {
  if (spec.sweep.empty()) return;
  json_value base = spec.to_json();
  auto& members = base.as_object();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].first == "sweep") {
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  for (std::size_t i = 0; i < spec.sweep.size(); ++i) {
    const sweep_axis& axis = spec.sweep[i];
    const std::string context = "sweep[" + std::to_string(i) + "]";
    for (const json_value& value : axis.values) {
      json_value probe = base;
      try {
        probe.set_path(axis.param, value);
      } catch (const json_type_error& error) {
        throw spec_error(context + ".param",
                         "'" + axis.param +
                             "' does not address a settable spec field (" +
                             error.what() + ")");
      }
      try {
        (void)scenario_spec::from_json(probe);
      } catch (const spec_error& error) {
        throw spec_error(context, "value " + value.dump(0) + " for '" +
                                      axis.param + "' is invalid: " +
                                      error.what());
      }
    }
  }
}

}  // namespace

scheme_ref parse_compact_scheme(std::string_view text,
                                const std::string& context) {
  scheme_ref ref;
  parse_compact_entry(text, context, ref.name, ref.options);
  return ref;
}

compact_region_value parse_compact_region_value(std::string_view field,
                                                std::string_view text) {
  compact_region_value value;
  for (const std::string& token : split_csv(text)) {
    const std::size_t eq = token.find('=');
    const std::string key = eq == std::string::npos ? token : token.substr(0, eq);
    if (key == "spare_rows" || key == "pcell" || key == "vdd") {
      if (eq == std::string::npos) {
        throw spec_error(std::string(field), key + " needs a value");
      }
      const std::string raw = token.substr(eq + 1);
      if (key == "spare_rows") {
        // Bounded like the JSON path — no silent 32-bit wrap-around.
        const std::uint64_t spares = parse_spec_u64(field, raw);
        if (spares > (1u << 22)) {
          throw spec_error(std::string(field),
                           "spare_rows must be at most " +
                               std::to_string(1u << 22) + ", got " + raw);
        }
        value.spare_rows = static_cast<std::uint32_t>(spares);
      } else if (key == "pcell") {
        const double pcell = parse_spec_double(field, raw);
        if (pcell < 0.0 || pcell >= 1.0) {
          throw spec_error(std::string(field),
                           "pcell must be in [0, 1), got " + raw);
        }
        value.pcell = pcell;
      } else {
        const double vdd = parse_spec_double(field, raw);
        if (vdd <= 0.0 || vdd > 2.0) {
          throw spec_error(std::string(field),
                           "vdd must be in (0, 2] volts, got " + raw);
        }
        value.vdd = vdd;
      }
      continue;
    }
    // Scheme name first, then its options, re-joined in compact form.
    value.scheme += value.scheme.empty() ? token : ":" + token;
  }
  if (value.scheme.empty()) {
    throw spec_error(std::string(field), "region names no scheme");
  }
  return value;
}

std::string region_spec::range_label() const {
  return std::to_string(first_row) + "-" + std::to_string(last_row);
}

std::pair<std::uint32_t, std::uint32_t> parse_row_range(std::string_view field,
                                                        std::string_view text) {
  const std::size_t dash = text.find('-');
  const std::string_view first_text =
      dash == std::string_view::npos ? text : text.substr(0, dash);
  const std::string_view last_text =
      dash == std::string_view::npos ? text : text.substr(dash + 1);
  const std::uint64_t first = parse_spec_u64(field, first_text);
  const std::uint64_t last = parse_spec_u64(field, last_text);
  if (first > last) {
    throw spec_error(std::string(field),
                     "range \"" + std::string(text) + "\" is descending");
  }
  if (last >= (std::uint64_t{1} << 32)) {
    throw spec_error(std::string(field), "row " + std::to_string(last) +
                                             " does not fit in 32 bits");
  }
  return {static_cast<std::uint32_t>(first), static_cast<std::uint32_t>(last)};
}

std::optional<region_table_issue> find_region_table_issue(
    const std::vector<region_spec>& regions, std::uint32_t rows_per_tile) {
  std::uint32_t next = 0;  // first row the next region must start at
  for (std::size_t i = 0; i < regions.size(); ++i) {
    const region_spec& region = regions[i];
    if (region.first_row != next) {
      if (region.first_row < next) {
        return region_table_issue{
            i, "rows",
            "range " + region.range_label() +
                   " overlaps (or repeats) the previous region; regions must "
                   "be ordered and disjoint"};
      }
      return region_table_issue{
          i, "rows",
          "range " + region.range_label() + " leaves rows " +
                 std::to_string(next) + "-" +
                 std::to_string(region.first_row - 1) +
                 " uncovered; regions must tile the whole tile gap-free"};
    }
    if (region.last_row >= rows_per_tile) {
      return region_table_issue{
          i, "rows",
          "range " + region.range_label() + " exceeds the tile (rows 0-" +
                 std::to_string(rows_per_tile - 1) + ")"};
    }
    if (region.spare_rows > region.rows()) {
      return region_table_issue{
          i, "spare_rows",
          "spare_rows = " + std::to_string(region.spare_rows) +
                 " exceeds the region's " + std::to_string(region.rows()) +
                 " data rows"};
    }
    next = region.last_row + 1;
  }
  if (!regions.empty() && next != rows_per_tile) {
    return region_table_issue{
        regions.size() - 1, "rows",
        "last region ends at row " + std::to_string(next - 1) +
            " but the tile has rows 0-" + std::to_string(rows_per_tile - 1) +
            "; regions must cover the tile exactly"};
  }
  return std::nullopt;
}

std::string geometry_spec::size_label() const {
  const std::uint64_t bits =
      static_cast<std::uint64_t>(rows_per_tile) * word_bits;
  if (bits % (8 * 1024) == 0) return std::to_string(bits / (8 * 1024)) + "KB";
  return std::to_string(bits / 8) + "B";
}

scenario_spec scenario_spec::from_json(const json_value& doc) {
  if (!doc.is_object()) throw spec_error("(root)", "spec must be a JSON object");
  scenario_spec spec;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      spec.name = get_string_checked(value, "name");
    } else if (key == "geometry") {
      parse_geometry(get_object_checked(value, "geometry"), spec.geometry);
    } else if (key == "fault") {
      parse_fault(get_object_checked(value, "fault"), spec.fault);
    } else if (key == "seeds") {
      parse_seeds(get_object_checked(value, "seeds"), spec.seeds);
    } else if (key == "run") {
      parse_run(get_object_checked(value, "run"), spec.run);
    } else if (key == "scrub") {
      parse_scrub(get_object_checked(value, "scrub"), spec.scrub);
    } else if (key == "retire") {
      parse_retire(get_object_checked(value, "retire"), spec.retire);
    } else if (key == "serve") {
      parse_serve(get_object_checked(value, "serve"), spec.serve);
    } else if (key == "schemes") {
      if (!value.is_array()) throw spec_error("schemes", "expected an array");
      const auto& entries = value.as_array();
      for (std::size_t i = 0; i < entries.size(); ++i) {
        scheme_ref ref;
        parse_entry(entries[i], "schemes[" + std::to_string(i) + "]", ref.name,
                    ref.options);
        spec.schemes.push_back(std::move(ref));
      }
    } else if (key == "regions") {
      if (!value.is_array()) throw spec_error("regions", "expected an array");
      parse_regions(value, spec.regions);
    } else if (key == "workload") {
      parse_entry(value, "workload", spec.workload.name, spec.workload.options);
    } else if (key == "sweep") {
      if (!value.is_array()) throw spec_error("sweep", "expected an array");
      parse_sweep(value, spec.sweep);
    } else {
      throw spec_error(key, "unknown field");
    }
  }
  // Cross-field checks run after the whole document is parsed (JSON
  // member order must not matter): the region table against the final
  // geometry, then every sweep axis against the assembled base spec.
  if (const auto issue =
          find_region_table_issue(spec.regions, spec.geometry.rows_per_tile)) {
    throw spec_error(
        "regions[" + std::to_string(issue->index) + "]." + issue->member,
        issue->message);
  }
  validate_sweep_axes(spec);
  return spec;
}

scenario_spec scenario_spec::parse_text(std::string_view text) {
  return from_json(json_value::parse(text));
}

json_value scenario_spec::to_json() const {
  json_value doc = json_value::make_object();
  doc.set("name", name);

  json_value g = json_value::make_object();
  g.set("rows_per_tile", geometry.rows_per_tile);
  g.set("word_bits", geometry.word_bits);
  g.set("frac_bits", geometry.frac_bits);
  doc.set("geometry", std::move(g));

  json_value f = json_value::make_object();
  // Absent operating points stay absent (an emitted 0 would turn the
  // unset state into "inject zero faults" on reparse).
  if (fault.pcell.has_value()) f.set("pcell", *fault.pcell);
  if (fault.vdd.has_value()) f.set("vdd", *fault.vdd);
  f.set("polarity", std::string(to_string(fault.polarity)));
  f.set("vcrit_mean", fault.vcrit_mean);
  f.set("vcrit_sigma", fault.vcrit_sigma);
  f.set("model_seed", fault.model_seed);
  // Emitted only when aging is in play, like the optional sections
  // below: pre-lifecycle specs keep normalizing byte-identically.
  if (fault.age_hours > 0.0) f.set("age_hours", fault.age_hours);
  doc.set("fault", std::move(f));

  json_value s = json_value::make_object();
  s.set("root", seeds.root);
  s.set("app", seeds.app);
  doc.set("seeds", std::move(s));

  json_value r = json_value::make_object();
  r.set("threads", run.threads);
  r.set("batch", run.batch);
  doc.set("run", std::move(r));

  if (scrub != scrub_spec{}) {
    json_value sc = json_value::make_object();
    sc.set("interval", scrub.interval);
    sc.set("rows_per_pass", scrub.rows_per_pass);
    sc.set("retire_correctable", scrub.retire_correctable);
    doc.set("scrub", std::move(sc));
  }

  if (retire != retire_spec{}) {
    json_value rt = json_value::make_object();
    rt.set("policy", std::string(to_string(retire.policy)));
    rt.set("max_retries", retire.max_retries);
    rt.set("spare_rows", retire.spare_rows);
    rt.set("reliable_region", retire.reliable_region);
    doc.set("retire", std::move(rt));
  }

  if (serve != serve_spec{}) {
    json_value sv = json_value::make_object();
    sv.set("clients", serve.clients);
    sv.set("requests", serve.requests);
    sv.set("requests_per_epoch", serve.requests_per_epoch);
    sv.set("store_percent", serve.store_percent);
    sv.set("quality_percent", serve.quality_percent);
    sv.set("initial_faults", serve.initial_faults);
    sv.set("arrivals_per_epoch", serve.arrivals_per_epoch);
    sv.set("intermittent_cells", serve.intermittent_cells);
    doc.set("serve", std::move(sv));
  }

  json_value scheme_list = json_value::make_array();
  for (const scheme_ref& ref : schemes) {
    scheme_list.push_back(entry_to_json(ref.name, ref.options));
  }
  doc.set("schemes", std::move(scheme_list));

  if (!regions.empty()) {
    json_value region_list = json_value::make_array();
    for (const region_spec& region : regions) {
      json_value entry = json_value::make_object();
      entry.set("rows", region.range_label());
      entry.set("scheme",
                entry_to_json(region.scheme.name, region.scheme.options));
      if (region.spare_rows != 0) entry.set("spare_rows", region.spare_rows);
      if (region.pcell.has_value()) entry.set("pcell", *region.pcell);
      if (region.vdd.has_value()) entry.set("vdd", *region.vdd);
      region_list.push_back(std::move(entry));
    }
    doc.set("regions", std::move(region_list));
  }

  if (!workload.name.empty()) {
    doc.set("workload", entry_to_json(workload.name, workload.options));
  }

  if (!sweep.empty()) {
    json_value axes = json_value::make_array();
    for (const sweep_axis& axis : sweep) {
      json_value a = json_value::make_object();
      a.set("param", axis.param);
      json_value values = json_value::make_array();
      for (const json_value& v : axis.values) values.push_back(v);
      a.set("values", std::move(values));
      axes.push_back(std::move(a));
    }
    doc.set("sweep", std::move(axes));
  }
  return doc;
}

std::string scenario_spec::canonical_hash() const {
  return to_hex16(fnv1a64(to_json().dump()));
}

cell_failure_model scenario_spec::failure_model() const {
  // Unset calibration fields fall back to the 28 nm-class anchors of
  // cell_failure_model::default_28nm.
  const double default_mean = 0.28937;
  const double default_sigma = 0.11848;
  cell_failure_model model =
      fault.vcrit_mean == 0.0 && fault.vcrit_sigma == 0.0
          ? cell_failure_model::default_28nm(fault.model_seed)
          : cell_failure_model{
                fault.vcrit_mean > 0.0 ? fault.vcrit_mean : default_mean,
                fault.vcrit_sigma > 0.0 ? fault.vcrit_sigma : default_sigma,
                fault.model_seed};
  if (fault.age_hours > 0.0) {
    model = model.aged(cell_failure_model::bti_vcrit_shift(fault.age_hours));
  }
  return model;
}

double scenario_spec::resolved_pcell(std::string_view consumer) const {
  // Presence decides, not the value: pcell = 0 is the fault-free point.
  if (fault.pcell.has_value()) return *fault.pcell;
  if (fault.vdd.has_value()) return failure_model().pcell(*fault.vdd);
  throw spec_error("fault.pcell", "workload '" + std::string(consumer) +
                                      "' needs fault.pcell or fault.vdd");
}

double scenario_spec::resolved_region_pcell(const region_spec& region,
                                            std::string_view consumer) const {
  if (region.pcell.has_value()) return *region.pcell;
  if (region.vdd.has_value()) return failure_model().pcell(*region.vdd);
  return resolved_pcell(consumer);
}

storage_config scenario_spec::storage(std::uint32_t spare_rows) const {
  storage_config config;
  config.rows_per_tile = geometry.rows_per_tile;
  config.word_bits = geometry.word_bits;
  config.frac_bits = geometry.frac_bits;
  config.spare_rows_per_tile = spare_rows;
  return config;
}

namespace {

/// "a-b=scheme,opt=v,spare_rows=4,pcell=1e-4" compact region form ->
/// the JSON object the spec parser accepts. Reserved keys (spare_rows,
/// pcell, vdd) become region members; everything else configures the
/// region's scheme.
json_value compact_region_to_json(std::string_view text,
                                  const std::string& context) {
  const std::size_t eq = text.find('=');
  if (eq == std::string_view::npos) {
    throw spec_error(context, "expected <rows>=<scheme...>, got \"" +
                                  std::string(text) + "\"");
  }
  const std::string range(text.substr(0, eq));
  (void)parse_row_range(context, range);  // early, caller-blamed check

  json_value entry = json_value::make_object();
  entry.set("rows", range);
  const compact_region_value tokens =
      parse_compact_region_value(context + " \"" + range + "\"",
                                 text.substr(eq + 1));
  entry.set("scheme", tokens.scheme);
  if (tokens.spare_rows.has_value()) entry.set("spare_rows", *tokens.spare_rows);
  if (tokens.pcell.has_value()) entry.set("pcell", *tokens.pcell);
  if (tokens.vdd.has_value()) entry.set("vdd", *tokens.vdd);
  return entry;
}

}  // namespace

void apply_spec_override(json_value& doc, std::string_view key,
                         std::string_view value) {
  key = resolve_spec_alias(key);

  if (key == "regions") {
    // Colon-separated compact region entries replace the whole list;
    // an empty value clears it (back to a homogeneous tile).
    json_value list = json_value::make_array();
    std::size_t start = 0;
    while (start < value.size()) {
      const std::size_t colon = value.find(':', start);
      const std::string_view item = colon == std::string_view::npos
                                        ? value.substr(start)
                                        : value.substr(start, colon - start);
      if (!item.empty()) {
        list.push_back(compact_region_to_json(item, "regions"));
      }
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    doc.set("regions", std::move(list));
    return;
  }

  if (key.starts_with("regions.")) {
    // regions.<range>.<member>=value merges into the region whose rows
    // match <range> (appending a new entry for an unseen range, which
    // the spec parser then validates for coverage and a scheme).
    const std::string_view rest = key.substr(8);
    const std::size_t dot = rest.rfind('.');
    if (dot == std::string_view::npos) {
      throw spec_error(std::string(key),
                       "expected regions.<range>.<member>=value");
    }
    const std::string range(rest.substr(0, dot));
    const std::string member(rest.substr(dot + 1));
    (void)parse_row_range(std::string(key), range);
    json_value* regions = const_cast<json_value*>(doc.find("regions"));
    if (regions == nullptr || !regions->is_array()) {
      json_value list = json_value::make_array();
      doc.set("regions", std::move(list));
      regions = const_cast<json_value*>(doc.find("regions"));
    }
    for (json_value& existing : regions->as_array()) {
      const json_value* rows = existing.find("rows");
      if (rows != nullptr && rows->is_string() && rows->as_string() == range) {
        existing.set(member, option_value_to_json(std::string(value)));
        return;
      }
    }
    json_value entry = json_value::make_object();
    entry.set("rows", range);
    entry.set(member, option_value_to_json(std::string(value)));
    regions->push_back(std::move(entry));
    return;
  }

  if (key == "schemes") {
    // Comma-separated compact scheme forms replace the whole list. A
    // tiered entry's sub-scheme options also use commas
    // (tiered:0-99=secded:100-4095=shuffle,nfm=2); an item whose
    // leading name token carries '=' can never start a standalone entry
    // (scheme names have no '='), so such items re-join the entry they
    // were split from.
    std::vector<std::string> items;
    for (const std::string& item : split_csv(value)) {
      const std::string_view name_token =
          std::string_view(item).substr(0, item.find(':'));
      if (!items.empty() && name_token.find('=') != std::string_view::npos) {
        items.back() += "," + item;
      } else {
        items.push_back(item);
      }
    }
    json_value list = json_value::make_array();
    for (const std::string& item : items) {
      list.push_back(json_value(item));
    }
    doc.set("schemes", std::move(list));
    return;
  }

  if (key.starts_with("sweep.")) {
    const std::string param(resolve_spec_alias(key.substr(6)));
    json_value values = json_value::make_array();
    for (const std::string& item : split_csv(value)) {
      values.push_back(option_value_to_json(item));
    }
    json_value axis = json_value::make_object();
    axis.set("param", param);
    axis.set("values", std::move(values));
    json_value* sweep = const_cast<json_value*>(doc.find("sweep"));
    if (sweep == nullptr || !sweep->is_array()) {
      json_value list = json_value::make_array();
      list.push_back(std::move(axis));
      doc.set("sweep", std::move(list));
      return;
    }
    for (json_value& existing : sweep->as_array()) {
      const json_value* existing_param = existing.find("param");
      if (existing_param != nullptr && existing_param->is_string() &&
          existing_param->as_string() == param) {
        existing = std::move(axis);
        return;
      }
    }
    sweep->push_back(std::move(axis));
    return;
  }

  // A compact workload string would block dotted workload.* overrides:
  // normalize it to object form first.
  if (key.starts_with("workload.")) {
    const json_value* existing = doc.find("workload");
    if (existing != nullptr && existing->is_string()) {
      std::string name;
      option_map options;
      parse_compact_entry(existing->as_string(), "workload", name, options);
      doc.set("workload", entry_to_json(name, options));
    }
    // "workload.name=x" and the shorthand "workload=x" both land on the
    // object's name member below.
  }
  if (key == "workload") {
    // Merge into an existing workload object (so the override orders
    // `workload.samples=2 workload=fig7-quality` and
    // `workload=fig7-quality workload.samples=2` mean the same thing) —
    // but only while the name is unset or unchanged: switching to a
    // DIFFERENT workload drops the old one's options, whose names would
    // otherwise be silently reinterpreted (or rejected) by the new one.
    std::string name;
    option_map options;
    parse_compact_entry(value, "workload", name, options);
    // Normalize a compact-string spec workload to object form first, so
    // the merge decision below sees its name and options either way.
    json_value existing;
    if (const json_value* node = doc.find("workload"); node != nullptr) {
      if (node->is_string()) {
        std::string existing_name;
        option_map existing_options;
        parse_compact_entry(node->as_string(), "workload", existing_name,
                            existing_options);
        existing = entry_to_json(existing_name, existing_options);
      } else {
        existing = *node;
      }
    }
    const json_value* existing_name = existing.find("name");
    if (existing.is_object() &&
        (existing_name == nullptr ||
         (existing_name->is_string() && existing_name->as_string() == name))) {
      json_value merged = std::move(existing);
      merged.set("name", name);
      for (const auto& [opt_key, opt_value] : options.entries()) {
        merged.set(opt_key, option_value_to_json(opt_value));
      }
      doc.set("workload", std::move(merged));
    } else {
      doc.set("workload", entry_to_json(name, options));
    }
    return;
  }

  try {
    doc.set_path(key, option_value_to_json(std::string(value)));
  } catch (const json_type_error& error) {
    throw spec_error(std::string(key),
                     std::string("cannot set this path (") + error.what() + ")");
  }
}

}  // namespace urmem
