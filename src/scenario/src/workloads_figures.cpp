// Built-in workloads reproducing the paper's figure/table experiments.
// The text bodies here are the exact stdout the legacy hand-wired
// binaries printed — those binaries are now thin wrappers that build a
// scenario_spec and print this text after their banner, so their output
// stays byte-identical at fixed seeds while every experiment becomes
// reachable from `urmem-run` and sweepable from spec files.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>

#include "urmem/common/binomial.hpp"
#include "urmem/common/table.hpp"
#include "urmem/scenario/workload_registry.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/quality_experiment.hpp"
#include "urmem/sim/quantizer.hpp"
#include "urmem/yield/analytic.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace urmem {
namespace {

// ------------------------------------------------------------- fig5-mse

/// Stratified Fig. 5 sweep of one scheme as a fault-injection campaign:
/// trial i belongs to the stratum covering i in the flattened
/// per-stratum sample allocation, and every trial draws its own fault
/// map on its own deterministic stream.
empirical_cdf campaign_mse_cdf(campaign_runner& runner,
                               const protection_scheme& scheme,
                               std::uint32_t rows, double pcell,
                               const mse_cdf_config& config) {
  const array_geometry geometry{rows, scheme.storage_bits()};
  std::vector<mse_stratum> strata = mse_strata(geometry, pcell, config);
  if (config.include_fault_free) {
    // Same Pr(N = 0) mass at MSE 0 that compute_mse_cdf prepends; an
    // n = 0 trial draws no cells and costs 0 without touching its rng.
    const binomial_distribution dist(geometry.cells(), pcell);
    strata.insert(strata.begin(), {0, 1, dist.pmf(0)});
  }

  std::vector<std::uint64_t> starts;  // first trial index of each stratum
  starts.reserve(strata.size());
  std::uint64_t trials = 0;
  for (const mse_stratum& s : strata) {
    starts.push_back(trials);
    trials += s.count;
  }

  return runner.map_weighted(
      trials, [&](std::uint64_t trial, rng& gen) -> weighted_sample {
        const auto it = std::upper_bound(starts.begin(), starts.end(), trial);
        const mse_stratum& s = strata[static_cast<std::size_t>(
            std::distance(starts.begin(), it) - 1)];
        return {sample_mse(scheme, geometry, s.n, gen), s.weight_each};
      });
}

/// Fig. 5: CDF of the memory MSE (Eq. 6) across the spec's schemes.
class fig5_workload final : public workload {
 public:
  explicit fig5_workload(const option_map& options)
      : runs_(options.get_u64("runs", 10'000'000)),
        n_max_(options.get_u64("nmax", 150)),
        analytic_(options.get_bool("analytic", false)) {
    if (runs_ < 1) {
      throw spec_error(options.field_name("runs"), "must be at least 1");
    }
    if (n_max_ < 1) {
      throw spec_error(options.field_name("nmax"), "must be at least 1");
    }
  }

  workload_output run(const scenario_spec& spec,
                      campaign_pool& pool) const override {
    reject_region_operating_points(spec, "fig5-mse");
    const std::vector<scheme_recipe> recipes =
        resolve_word_transform_schemes(spec, "fig5-mse");
    if (recipes.empty()) {
      throw spec_error("schemes", "fig5-mse needs at least one scheme");
    }
    const double pcell = spec.resolved_pcell("fig5-mse");
    if (pcell <= 0.0) {
      throw spec_error("fault.pcell",
                       "fig5-mse stratifies over failure counts and needs a "
                       "positive Pcell");
    }
    const std::uint32_t rows = spec.geometry.rows_per_tile;

    mse_cdf_config config;
    config.total_runs = runs_;
    config.n_max = n_max_;
    config.seed = spec.seeds.root;

    std::vector<std::unique_ptr<protection_scheme>> schemes;
    schemes.reserve(recipes.size());
    for (const scheme_recipe& recipe : recipes) schemes.push_back(recipe.factory(rows));

    std::ostringstream out;
    out << spec.geometry.size_label() << " memory (" << rows << " x "
        << spec.geometry.word_bits
        << "), Pcell = " << format_scientific(pcell, 2)
        << ", Trun = " << config.total_runs << ", failure counts 1.."
        << config.n_max << " (CDF conditional on N >= 1, per Eq. 5)\n\n";

    std::uint64_t total_trials = 0;
    std::vector<empirical_cdf> cdfs;
    if (analytic_) {
      // The analytic convolution builds ONE per-row cost distribution
      // from the row-agnostic worst_case_row_cost; a tiered scheme has
      // no single such distribution (each tier has its own), so the
      // closed form would charge every fault at the weakest tier.
      for (std::size_t i = 0; i < recipes.size(); ++i) {
        if (recipes[i].regions.empty()) continue;
        throw spec_error(i < spec.schemes.size()
                             ? "schemes[" + std::to_string(i) + "]"
                             : "regions",
                         "fig5-mse analytic=true convolves one per-row cost "
                         "distribution and cannot model tiered schemes; use "
                         "the sampled path (analytic=false)");
      }
    }
    for (const auto& scheme : schemes) {
      if (analytic_) {
        std::cerr << "  convolving " << scheme->name() << "...\n";
        analytic_cdf_config acfg;
        acfg.n_max = std::min<std::uint64_t>(config.n_max, 40);
        cdfs.push_back(analytic_mse_cdf(*scheme, rows, pcell, acfg));
      } else {
        campaign_runner& runner = pool.runner();
        std::cerr << "  sampling " << scheme->name() << "...\n";
        cdfs.push_back(campaign_mse_cdf(runner, *scheme, rows, pcell, config));
        const campaign_stats stats = runner.last_stats();
        total_trials += stats.trials;
        std::cerr << "    " << stats.trials << " trials in " << stats.batches
                  << " batches (" << stats.steals << " steals)\n";
      }
    }

    // The paper's x-axis: MSE from 1e-4 to 1e8.
    std::vector<std::string> headers{"MSE <="};
    for (const auto& scheme : schemes) headers.push_back(scheme->name());
    console_table table(headers);
    for (const double mse : logspace(1e-4, 1e8, 25)) {
      std::vector<std::string> row{format_scientific(mse, 1)};
      for (const auto& cdf : cdfs) row.push_back(format_double(cdf.at(mse), 4));
      table.add_row(std::move(row));
    }
    table.print(out);

    out << "\nMSE budget required per yield target (quantiles):\n";
    console_table quantiles({"scheme", "yield 50%", "yield 90%", "yield 99%",
                             "yield 99.99%"});
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      quantiles.add_row({schemes[i]->name(),
                         format_scientific(mse_for_yield(cdfs[i], 0.50), 2),
                         format_scientific(mse_for_yield(cdfs[i], 0.90), 2),
                         format_scientific(mse_for_yield(cdfs[i], 0.99), 2),
                         format_scientific(mse_for_yield(cdfs[i], 0.9999), 2)});
    }
    quantiles.print(out);

    // The paper's headline claims compare specific schemes; the block
    // only prints when the scheme set contains them (it always does for
    // the canonical Fig. 5 spec).
    const auto index_of = [&](std::string_view name) -> std::ptrdiff_t {
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        if (schemes[i]->name() == name) return static_cast<std::ptrdiff_t>(i);
      }
      return -1;
    };
    const auto index_of_suffix = [&](std::string_view suffix) -> std::ptrdiff_t {
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        if (schemes[i]->name().ends_with(suffix)) {
          return static_cast<std::ptrdiff_t>(i);
        }
      }
      return -1;
    };
    const std::ptrdiff_t idx_none = index_of("no-correction");
    const std::ptrdiff_t idx_n1 = index_of("nFM=1");
    const std::ptrdiff_t idx_n2 = index_of("nFM=2");
    const std::ptrdiff_t idx_pecc = index_of_suffix("P-ECC");
    if (idx_none >= 0 && idx_n1 >= 0 && idx_n2 >= 0 && idx_pecc >= 0) {
      out << "\nPaper headline checks:\n";
      console_table claims({"claim", "paper", "measured"});
      const double reduction = mse_for_yield(cdfs[idx_none], 0.99) /
                               mse_for_yield(cdfs[idx_n1], 0.99);
      claims.add_row({"MSE reduction @ matched yield, nFM=1 vs none", ">= 30x",
                      format_double(reduction, 3) + "x"});
      claims.add_row({"yield @ MSE < 1e6, nFM=1", "99.9999%",
                      format_percent(yield_at_mse(cdfs[idx_n1], 1e6), 4)});
      claims.add_row({"yield @ MSE < 1e6, no correction",
                      "<6%  (see EXPERIMENTS.md)",
                      format_percent(yield_at_mse(cdfs[idx_none], 1e6), 1)});
      claims.add_row({"nFM=2..5 beat P-ECC @ yield 99%", "yes",
                      mse_for_yield(cdfs[idx_n2], 0.99) <
                              mse_for_yield(cdfs[idx_pecc], 0.99)
                          ? "yes"
                          : "no"});
      claims.print(out);
    }

    workload_output output;
    output.text = out.str();
    output.trials = total_trials;
    output.json = json_value::make_object();
    output.json.set("pcell", pcell);
    output.json.set("runs", config.total_runs);
    output.json.set("n_max", config.n_max);
    output.json.set("analytic", analytic_);
    json_value scheme_results = json_value::make_array();
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      json_value entry = json_value::make_object();
      entry.set("name", schemes[i]->name());
      entry.set("mse_at_yield_50", mse_for_yield(cdfs[i], 0.50));
      entry.set("mse_at_yield_90", mse_for_yield(cdfs[i], 0.90));
      entry.set("mse_at_yield_99", mse_for_yield(cdfs[i], 0.99));
      entry.set("mse_at_yield_9999", mse_for_yield(cdfs[i], 0.9999));
      entry.set("yield_at_mse_1e6", yield_at_mse(cdfs[i], 1e6));
      scheme_results.push_back(std::move(entry));
    }
    output.json.set("schemes", std::move(scheme_results));
    return output;
  }

 private:
  std::uint64_t runs_;
  std::uint64_t n_max_;
  bool analytic_;
};

// --------------------------------------------------------- fig7-quality

/// Fig. 7: CDF of application quality across the spec's schemes.
class fig7_workload final : public workload {
 public:
  explicit fig7_workload(const option_map& options)
      : samples_(options.get_u32("samples", 10)),
        coverage_(options.get_double("coverage", 0.99)),
        apps_(options.get_list("apps", "")) {
    if (samples_ < 1) {
      throw spec_error(options.field_name("samples"), "must be at least 1");
    }
    if (coverage_ <= 0.0 || coverage_ >= 1.0) {
      throw spec_error(options.field_name("coverage"), "must be in (0, 1)");
    }
    // A typo here would otherwise filter every application out and
    // produce an empty, successful-looking run.
    for (const std::string& app : apps_) {
      if (app != "elasticnet" && app != "pca" && app != "knn") {
        throw spec_error(options.field_name("apps"),
                         "unknown application \"" + app +
                             "\" (valid: elasticnet, pca, knn)");
      }
    }
  }

  workload_output run(const scenario_spec& spec,
                      campaign_pool& pool) const override {
    reject_region_operating_points(spec, "fig7-quality");
    const std::vector<scheme_recipe> recipes = resolve_schemes(spec);
    if (recipes.empty()) {
      throw spec_error("schemes", "fig7-quality needs at least one scheme");
    }
    campaign_runner& runner = pool.runner();

    quality_experiment_config config;
    config.pcell = spec.resolved_pcell("fig7-quality");
    if (config.pcell <= 0.0) {
      throw spec_error("fault.pcell",
                       "fig7-quality stratifies over failure counts and needs "
                       "a positive Pcell");
    }
    config.storage = spec.storage();
    config.samples_per_count = samples_;
    config.coverage = coverage_;
    config.polarity = spec.fault.polarity;
    config.seed = spec.seeds.root;

    std::ostringstream out;
    out << spec.geometry.size_label()
        << " tiles, Pcell = " << format_scientific(config.pcell, 2) << ", Nmax ("
        << static_cast<int>(std::llround(coverage_ * 100))
        << "% coverage) = " << failure_count_limit(config)
        << ", samples per failure count = " << config.samples_per_count
        << "\n(H(39,32) ECC is the paper's error-free reference: samples "
           "with >1 error per word are discarded there, normalized "
           "metric = 1.0 by construction.)\n\n";

    workload_output output;
    output.json = json_value::make_object();
    output.json.set("pcell", config.pcell);
    output.json.set("samples_per_count", std::uint64_t{config.samples_per_count});
    json_value app_results = json_value::make_array();

    for (const auto& app : make_all_applications(spec.seeds.app)) {
      if (!apps_.empty() &&
          std::find(apps_.begin(), apps_.end(),
                    lowercase(app->name())) == apps_.end()) {
        continue;
      }
      out << "--- " << app->name() << " (" << app->dataset_name()
          << ", metric: " << app->metric_name() << ") ---\n";

      std::vector<quality_result> results;
      for (const scheme_recipe& recipe : recipes) {
        std::cerr << "  running " << app->name() << " / " << recipe.display_name
                  << "...\n";
        quality_experiment_config scheme_config = config;
        scheme_config.storage.spare_rows_per_tile = recipe.spare_rows;
        scheme_config.storage.regions = recipe.regions;
        results.push_back(run_quality_experiment(
            *app, recipe.factory, recipe.display_name, scheme_config, runner));
        output.trials += runner.last_stats().trials;
      }

      out << "clean (quantized) metric = "
          << format_double(results.front().clean_metric, 4) << "\n\n";

      // The paper's y-axis: CDF over the normalized metric grid.
      std::vector<std::string> headers{"normalized metric <="};
      for (const auto& r : results) headers.push_back(r.scheme_name);
      console_table table(headers);
      for (const double q : linspace(0.0, 1.0, 21)) {
        std::vector<std::string> row{format_double(q, 3)};
        for (const auto& r : results) row.push_back(format_double(r.cdf.at(q), 4));
        table.add_row(std::move(row));
      }
      table.print(out);

      out << "\nLow quantiles (quality floor) per scheme:\n";
      console_table quantiles({"scheme", "q01", "q10", "q50"});
      for (const auto& r : results) {
        quantiles.add_row({r.scheme_name, format_double(r.cdf.quantile(0.01), 4),
                           format_double(r.cdf.quantile(0.10), 4),
                           format_double(r.cdf.quantile(0.50), 4)});
      }
      quantiles.print(out);
      out << "\n";

      json_value app_entry = json_value::make_object();
      app_entry.set("app", app->name());
      app_entry.set("clean_metric", results.front().clean_metric);
      json_value scheme_results = json_value::make_array();
      for (const auto& r : results) {
        json_value entry = json_value::make_object();
        entry.set("name", r.scheme_name);
        entry.set("q01", r.cdf.quantile(0.01));
        entry.set("q10", r.cdf.quantile(0.10));
        entry.set("q50", r.cdf.quantile(0.50));
        scheme_results.push_back(std::move(entry));
      }
      app_entry.set("schemes", std::move(scheme_results));
      app_results.push_back(std::move(app_entry));
    }
    output.json.set("apps", std::move(app_results));
    output.text = out.str();
    return output;
  }

 private:
  static std::string lowercase(std::string text) {
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return text;
  }

  std::uint32_t samples_;
  double coverage_;
  std::vector<std::string> apps_;
};

// ---------------------------------------------------------- table1-apps

/// Table 1: the evaluation applications, datasets and metrics, plus the
/// fault-free metric through the quantized storage path.
class table1_workload final : public workload {
 public:
  explicit table1_workload(const option_map& /*options*/) {}

  workload_output run(const scenario_spec& spec,
                      campaign_pool& pool) const override {
    reject_schemes(spec, "table1-apps");
    campaign_runner& runner = pool.runner();
    const char* classes[] = {"Regression", "Dimensionality Reduction",
                             "Classification"};
    const char* paper_datasets[] = {"Wine Quality [18]", "Madelon [19]",
                                    "Activity Recognition [20]"};

    console_table table({"Class", "Algorithm", "Paper dataset",
                         "Substitute dataset", "Metric",
                         "train rows x features", "clean metric",
                         "quantized metric"});
    const matrix_quantizer quantizer;
    const auto apps = make_all_applications(spec.seeds.app);

    // Trial 2i evaluates application i on its clean features, trial 2i+1
    // on the quantized round trip; no randomness is consumed.
    const std::vector<double> metrics =
        runner.map<double>(2 * apps.size(), [&](std::uint64_t trial, rng&) {
          const auto& app = apps[trial / 2];
          const matrix& train = app->train_features();
          return app->evaluate(trial % 2 == 0 ? train
                                              : quantizer.roundtrip(train));
        });

    workload_output output;
    output.trials = runner.last_stats().trials;
    output.json = json_value::make_object();
    json_value app_results = json_value::make_array();

    for (std::size_t i = 0; i < apps.size(); ++i) {
      const auto& app = apps[i];
      const matrix& train = app->train_features();
      const double clean = metrics[2 * i];
      const double quantized = metrics[2 * i + 1];
      table.add_row({classes[i], app->name(), paper_datasets[i],
                     app->dataset_name(), app->metric_name(),
                     std::to_string(train.rows()) + " x " +
                         std::to_string(train.cols()),
                     format_double(clean, 4), format_double(quantized, 4)});

      json_value entry = json_value::make_object();
      entry.set("class", classes[i]);
      entry.set("algorithm", app->name());
      entry.set("dataset", app->dataset_name());
      entry.set("metric", app->metric_name());
      entry.set("train_rows", static_cast<std::uint64_t>(train.rows()));
      entry.set("train_cols", static_cast<std::uint64_t>(train.cols()));
      entry.set("clean_metric", clean);
      entry.set("quantized_metric", quantized);
      app_results.push_back(std::move(entry));
    }

    std::ostringstream out;
    table.print(out);

    // Legacy prose spells the size "16 KB" (spaced) while the header
    // column uses "16KB"; keep both spellings for byte-identical output.
    const std::uint64_t tile_bits =
        static_cast<std::uint64_t>(spec.geometry.rows_per_tile) *
        spec.geometry.word_bits;
    const std::string spaced_label =
        tile_bits % (8 * 1024) == 0
            ? std::to_string(tile_bits / (8 * 1024)) + " KB"
            : spec.geometry.size_label();
    out << "\nStorage footprint (Q15.16 words in " << spaced_label
        << " tiles of " << spec.geometry.rows_per_tile << " words):\n";
    console_table footprint({"application", "words",
                             spec.geometry.size_label() + " tiles"});
    const std::uint64_t rows_per_tile = spec.geometry.rows_per_tile;
    for (const auto& app : apps) {
      const std::uint64_t words = static_cast<std::uint64_t>(
          app->train_features().rows() * app->train_features().cols());
      footprint.add_row({app->name(), std::to_string(words),
                         std::to_string((words + rows_per_tile - 1) /
                                        rows_per_tile)});
    }
    footprint.print(out);

    output.json.set("apps", std::move(app_results));
    output.text = out.str();
    return output;
  }
};

}  // namespace

namespace detail {

void register_figure_workloads(workload_registry& registry) {
  registry.add("fig5-mse",
               "CDF of the memory MSE under fault injection (paper Fig. 5)",
               "runs=1e7 nmax=150 analytic=false",
               [](const option_map& options) {
                 return std::make_unique<fig5_workload>(options);
               });
  registry.add("fig7-quality",
               "CDF of application quality under memory failures (Fig. 7)",
               "samples=10 coverage=0.99 apps=all",
               [](const option_map& options) {
                 return std::make_unique<fig7_workload>(options);
               });
  registry.add("table1-apps",
               "evaluation applications, datasets and clean metrics (Table 1)",
               "",
               [](const option_map& options) {
                 return std::make_unique<table1_workload>(options);
               });
}

}  // namespace detail

}  // namespace urmem
