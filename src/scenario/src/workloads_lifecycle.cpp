// The fault-lifecycle workload (`lifecycle-quality`): each scheme's
// tile lives through `epochs` epochs of deployed life — per-epoch fault
// arrivals (plus intermittent cells flipping between epochs) from the
// fault timeline, a background scrubber at the spec's `scrub` cadence,
// and the row-retirement / degradation policy of the `retire` section —
// then reads its data back and reports exact lifecycle accounting next
// to end-of-life quality. Sweeping scrub.interval at a fixed arrival
// rate reproduces the scrubbing-is-load-bearing regime: the longer the
// patrol period, the more rows collect a second fault while still
// carrying the first, and word errors grow monotonically.
//
// Determinism: every count is an integer; trials shard over the
// campaign pool on per-trial streams and every scheme column replays
// the same trial streams (same initial map, same timeline), so columns
// are comparable and reports are bit-identical at any thread count and
// on the reference fault path.
#include <algorithm>
#include <iostream>
#include <memory>
#include <sstream>

#include "urmem/common/table.hpp"
#include "urmem/lifecycle/lifecycle_manager.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scenario/workload_registry.hpp"

namespace urmem {
namespace {

/// One trial's (or the summed) outputs; integer throughout.
struct trial_counts {
  lifecycle_counters life;
  std::uint64_t corrected_words = 0;
  std::uint64_t uncorrectable_words = 0;
  std::uint64_t word_errors = 0;
  std::uint64_t error_lsb_sum = 0;
  std::uint64_t spares_left = 0;

  void operator+=(const trial_counts& other) {
    life += other.life;
    corrected_words += other.corrected_words;
    uncorrectable_words += other.uncorrectable_words;
    word_errors += other.word_errors;
    error_lsb_sum += other.error_lsb_sum;
    spares_left += other.spares_left;
  }
};

class lifecycle_workload final : public workload {
 public:
  explicit lifecycle_workload(const option_map& options)
      : epochs_(options.get_u32("epochs", 8)),
        arrivals_(options.get_u32("arrivals", 4)),
        intermittent_(options.get_u32("intermittent", 0)),
        initial_faults_(options.get_u64("initial_faults", 0)),
        trials_(options.get_u32("trials", 1)) {
    if (epochs_ < 1 || epochs_ > (1u << 20)) {
      throw spec_error(options.field_name("epochs"),
                       "must be in [1, 2^20]");
    }
    if (trials_ < 1) {
      throw spec_error(options.field_name("trials"), "must be at least 1");
    }
  }

  workload_output run(const scenario_spec& spec,
                      campaign_pool& pool) const override {
    // The lifecycle injects integer-exact fault populations of its own;
    // a spec-level operating point would be silently dead configuration.
    if (spec.fault.pcell.has_value() || spec.fault.vdd.has_value()) {
      throw spec_error(spec.fault.pcell.has_value() ? "fault.pcell"
                                                    : "fault.vdd",
                       "lifecycle-quality draws initial_faults exactly; "
                       "remove the operating point (or use another workload)");
    }
    reject_region_operating_points(spec, "lifecycle-quality");

    const std::vector<scheme_recipe> recipes = resolve_schemes(spec);
    const std::uint32_t rows = spec.geometry.rows_per_tile;

    // The stored data: one seed-derived integer pattern shared by every
    // scheme column and trial (spec.seeds.app, so root-seed sweeps keep
    // the data fixed).
    std::vector<word_t> words(rows);
    rng data_gen = named_stream_rng(spec.seeds.app, "lifecycle.data");
    for (word_t& word : words) {
      word = data_gen() & word_mask(spec.geometry.word_bits);
    }

    campaign_runner& runner = pool.runner();
    std::vector<trial_counts> totals;
    totals.reserve(recipes.size());
    for (const scheme_recipe& recipe : recipes) {
      validate_budget(spec, recipe);
      // Every scheme replays the same trial streams: same initial map,
      // same timeline seed — the columns differ only in protection.
      const std::vector<trial_counts> results = runner.map<trial_counts>(
          trials_, [&](std::uint64_t /*trial*/, rng& gen) {
            return run_trial(spec, recipe, words, gen);
          });
      trial_counts total;
      for (const trial_counts& r : results) total += r;
      totals.push_back(total);
    }
    return render(spec, recipes, totals);
  }

 private:
  /// Region table a tile of `recipe` is manufactured with: the recipe's
  /// own regions (tiered entries) or one homogeneous region, with the
  /// spec's `retire.spare_rows` lifecycle pool added to the reliable
  /// region (region 0 unless `retire.reliable_region` says otherwise).
  std::vector<memory_region> tile_regions(const scenario_spec& spec,
                                          const scheme_recipe& recipe,
                                          std::uint32_t rows) const {
    std::vector<memory_region> regions =
        recipe.regions.empty()
            ? std::vector<memory_region>{memory_region{0, rows - 1,
                                                       recipe.spare_rows}}
            : recipe.regions;
    if (spec.retire.reliable_region >= regions.size()) {
      throw spec_error("retire.reliable_region",
                       "tile has only " + std::to_string(regions.size()) +
                           " region(s)");
    }
    regions[spec.retire.reliable_region].spare_rows += spec.retire.spare_rows;
    return regions;
  }

  /// Fails fast (naming the workload option) when the configured
  /// arrivals would run the array out of healthy cells mid-run.
  void validate_budget(const scenario_spec& spec,
                       const scheme_recipe& recipe) const {
    const std::uint32_t rows = spec.geometry.rows_per_tile;
    const auto regions = tile_regions(spec, recipe, rows);
    std::uint32_t spares = 0;
    for (const memory_region& region : regions) spares += region.spare_rows;
    const std::uint64_t cells =
        std::uint64_t{rows + spares} * recipe.factory(1)->storage_bits();
    const std::uint64_t demand = initial_faults_ + intermittent_ +
                                 std::uint64_t{arrivals_} * epochs_;
    if (demand > cells) {
      throw spec_error("workload.arrivals",
                       "lifetime fault demand (" + std::to_string(demand) +
                           " cells) exceeds the " + std::to_string(cells) +
                           "-cell tile of scheme " + recipe.display_name);
    }
  }

  trial_counts run_trial(const scenario_spec& spec,
                         const scheme_recipe& recipe,
                         const std::vector<word_t>& words, rng& gen) const {
    const std::uint32_t rows = spec.geometry.rows_per_tile;
    protected_memory memory(rows, recipe.factory(rows),
                            tile_regions(spec, recipe, rows));

    fault_map initial(memory.storage_geometry());
    if (initial_faults_ > 0) {
      initial = sample_fault_map_exact(memory.storage_geometry(),
                                       initial_faults_, gen,
                                       spec.fault.polarity);
    }
    // Manufacture: BIST + fuse repair + scheme configuration — the one
    // time the part sees a tester. Epoch steps later swap maps in place.
    memory.set_fault_map(initial);

    timeline_config config;
    config.arrivals_per_epoch = arrivals_;
    config.intermittent_cells = intermittent_;
    config.polarity = spec.fault.polarity;
    config.seed = gen();  // per-trial stream -> per-trial timeline
    fault_timeline timeline(std::move(initial), config);

    lifecycle_manager manager(memory, std::move(timeline),
                              spec.scrub.config(), spec.retire.config());

    memory.write_block(0, words);
    for (std::uint32_t epoch = 0; epoch < epochs_; ++epoch) {
      if (!manager.step()) break;  // fail-stop: end of life
    }

    trial_counts counts;
    counts.life = manager.counters();
    std::vector<word_t> restored(words.size());
    protected_memory::block_stats stats;
    memory.read_block(0, restored, &stats);
    counts.corrected_words = stats.corrected;
    counts.uncorrectable_words = stats.uncorrectable;
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (words[i] == restored[i]) continue;
      ++counts.word_errors;
      counts.error_lsb_sum += words[i] > restored[i] ? words[i] - restored[i]
                                                     : restored[i] - words[i];
    }
    for (std::size_t r = 0; r < memory.regions().size(); ++r) {
      counts.spares_left += memory.unused_spares(r);
    }
    return counts;
  }

  workload_output render(const scenario_spec& spec,
                         const std::vector<scheme_recipe>& recipes,
                         const std::vector<trial_counts>& totals) const {
    std::ostringstream out;
    out << spec.geometry.size_label() << " tile ("
        << spec.geometry.rows_per_tile << " x " << spec.geometry.word_bits
        << "), " << epochs_ << " epoch(s) x " << trials_ << " trial(s), "
        << arrivals_ << " arrival(s)/epoch, " << intermittent_
        << " intermittent cell(s), scrub interval "
        << spec.scrub.interval << ", policy "
        << to_string(spec.retire.policy) << ".\n\n";

    console_table table({"scheme", "injected", "scrubbed", "rewrites",
                         "CE-retired", "UE", "retries", "UE-retired",
                         "pool dry", "marked", "failstops", "word errors"});
    json_value scheme_results = json_value::make_array();
    for (std::size_t s = 0; s < recipes.size(); ++s) {
      const trial_counts& t = totals[s];
      table.add_row({recipes[s].display_name,
                     std::to_string(t.life.injected_faults),
                     std::to_string(t.life.rows_scrubbed),
                     std::to_string(t.life.corrected_rewrites),
                     std::to_string(t.life.ce_retirements),
                     std::to_string(t.life.ue_detected),
                     std::to_string(t.life.read_retries),
                     std::to_string(t.life.ue_retirements),
                     std::to_string(t.life.pool_exhausted),
                     std::to_string(t.life.marked_rows),
                     std::to_string(t.life.failstops),
                     std::to_string(t.word_errors)});
      json_value entry = json_value::make_object();
      entry.set("name", recipes[s].display_name);
      entry.set("epochs", t.life.epochs);
      entry.set("injected_faults", t.life.injected_faults);
      entry.set("scrub_passes", t.life.scrub_passes);
      entry.set("rows_scrubbed", t.life.rows_scrubbed);
      entry.set("corrected_rewrites", t.life.corrected_rewrites);
      entry.set("ce_retirements", t.life.ce_retirements);
      entry.set("ue_detected", t.life.ue_detected);
      entry.set("read_retries", t.life.read_retries);
      entry.set("retry_successes", t.life.retry_successes);
      entry.set("ue_retirements", t.life.ue_retirements);
      entry.set("pool_exhausted", t.life.pool_exhausted);
      entry.set("cross_region_remaps", t.life.cross_region_remaps);
      entry.set("marked_rows", t.life.marked_rows);
      entry.set("failstops", t.life.failstops);
      entry.set("spares_left", t.spares_left);
      entry.set("corrected_words", t.corrected_words);
      entry.set("uncorrectable_words", t.uncorrectable_words);
      entry.set("word_errors", t.word_errors);
      entry.set("error_lsb_sum", t.error_lsb_sum);
      scheme_results.push_back(std::move(entry));
    }
    table.print(out);
    out << "\nRetirement needs detection: schemes without ECC detection "
           "(none, shuffle) ride along as unscrubbed baselines.\n";

    workload_output output;
    output.trials = trials_ * recipes.size();
    output.text = out.str();
    output.json = json_value::make_object();
    output.json.set("epochs", std::uint64_t{epochs_});
    output.json.set("arrivals", std::uint64_t{arrivals_});
    output.json.set("intermittent", std::uint64_t{intermittent_});
    output.json.set("initial_faults", initial_faults_);
    output.json.set("trials", std::uint64_t{trials_});
    json_value scrub = json_value::make_object();
    scrub.set("interval", spec.scrub.interval);
    scrub.set("rows_per_pass", spec.scrub.rows_per_pass);
    scrub.set("retire_correctable", spec.scrub.retire_correctable);
    output.json.set("scrub", std::move(scrub));
    json_value retire = json_value::make_object();
    retire.set("policy", std::string(to_string(spec.retire.policy)));
    retire.set("max_retries", spec.retire.max_retries);
    retire.set("spare_rows", spec.retire.spare_rows);
    retire.set("reliable_region", spec.retire.reliable_region);
    output.json.set("retire", std::move(retire));
    output.json.set("schemes", std::move(scheme_results));
    return output;
  }

  std::uint32_t epochs_;
  std::uint32_t arrivals_;
  std::uint32_t intermittent_;
  std::uint64_t initial_faults_;
  std::uint32_t trials_;
};

}  // namespace

namespace detail {

void register_lifecycle_workloads(workload_registry& registry) {
  registry.add(
      "lifecycle-quality",
      "fault-timeline + scrub + row-retirement accounting and end-of-life "
      "quality per scheme",
      "epochs=8 arrivals=4 intermittent=0 initial_faults=0 trials=1",
      [](const option_map& options) {
        return std::make_unique<lifecycle_workload>(options);
      });
}

}  // namespace detail

}  // namespace urmem
