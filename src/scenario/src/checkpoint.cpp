#include "urmem/scenario/checkpoint.hpp"

#include <utility>

#include "urmem/common/fs.hpp"

namespace urmem {

namespace {

/// Zero-padded index, "000003" — point files list in grid order.
std::string padded_index(std::uint64_t grid_index) {
  std::string digits = std::to_string(grid_index);
  if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
  return digits;
}

/// Parses one checkpoint document; nullopt unless `text` is well-formed
/// JSON carrying the expected schema tag (a truncated atomic write can
/// never produce one, but any other torn or foreign file lands here).
std::optional<json_value> parse_document(const std::string& text) {
  try {
    json_value doc = json_value::parse(text);
    const json_value* schema = doc.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != checkpoint_schema) {
      return std::nullopt;
    }
    return doc;
  } catch (const json_parse_error&) {
    return std::nullopt;
  }
}

enum class point_file_state { missing, corrupt, stale, ok };

struct loaded_point {
  point_file_state state = point_file_state::missing;
  scenario_point_result point;
  std::string found_hash;  ///< hash the file claims (stale diagnostics)
  json_value doc;          ///< full parsed document (duplicate compare)
};

/// Classifies and decodes one point file against the expected identity.
loaded_point load_point_file(const std::string& path,
                             std::uint64_t grid_index,
                             const std::string& spec_hash) {
  loaded_point result;
  const std::optional<std::string> text = read_file(path);
  if (!text.has_value()) return result;  // missing

  result.state = point_file_state::corrupt;
  const std::optional<json_value> doc = parse_document(*text);
  if (!doc.has_value()) return result;

  const json_value* hash = doc->find("spec_hash");
  if (hash == nullptr || !hash->is_string()) return result;
  if (hash->as_string() != spec_hash) {
    result.state = point_file_state::stale;
    result.found_hash = hash->as_string();
    return result;
  }

  try {
    const json_value* index = doc->find("grid_index");
    const json_value* assignments = doc->find("assignments");
    const json_value* trials = doc->find("trials");
    const json_value* data = doc->find("data");
    if (index == nullptr || index->as_u64() != grid_index ||
        assignments == nullptr || trials == nullptr || data == nullptr) {
      return result;  // corrupt (or misplaced)
    }
    if (const json_value* label = doc->find("point")) {
      result.point.label = label->as_string();
    }
    result.point.assignments = *assignments;
    result.point.output.trials = trials->as_u64();
    result.point.output.json = *data;
  } catch (const json_type_error&) {
    return result;  // corrupt
  }
  result.state = point_file_state::ok;
  result.doc = *doc;
  return result;
}

[[noreturn]] void throw_stale(const std::string& path,
                              const std::string& found,
                              const std::string& expected) {
  throw spec_error(
      "checkpoint-dir",
      "'" + path + "' belongs to spec hash " + found +
          " but the current spec hashes to " + expected +
          " — stale checkpoints are rejected; use a fresh directory or "
          "re-run with the original spec");
}

}  // namespace

checkpoint_store::checkpoint_store(std::string dir, std::string spec_hash)
    : dir_(std::move(dir)), spec_hash_(std::move(spec_hash)) {}

std::string checkpoint_store::manifest_path() const {
  return dir_ + "/manifest.json";
}

std::string checkpoint_store::point_path(std::uint64_t grid_index) const {
  return dir_ + "/point_" + padded_index(grid_index) + ".json";
}

void checkpoint_store::write_manifest(const json_value& spec,
                                      std::uint64_t grid_size) const {
  const std::string path = manifest_path();
  if (const std::optional<std::string> existing = read_file(path)) {
    if (const std::optional<json_value> doc = parse_document(*existing)) {
      const json_value* hash = doc->find("spec_hash");
      if (hash != nullptr && hash->is_string() &&
          hash->as_string() != spec_hash_) {
        throw_stale(path, hash->as_string(), spec_hash_);
      }
    }
    // An unparseable manifest (torn on a filesystem without atomic
    // rename) is simply republished below.
  }
  json_value doc = json_value::make_object();
  doc.set("schema", std::string(checkpoint_schema));
  doc.set("spec_hash", spec_hash_);
  doc.set("grid_size", grid_size);
  doc.set("spec", spec);
  write_file_atomic(path, doc.dump() + "\n");
}

std::optional<scenario_point_result> checkpoint_store::load_point(
    std::uint64_t grid_index) const {
  const std::string path = point_path(grid_index);
  loaded_point loaded = load_point_file(path, grid_index, spec_hash_);
  switch (loaded.state) {
    case point_file_state::ok:
      return std::move(loaded.point);
    case point_file_state::stale:
      throw_stale(path, loaded.found_hash, spec_hash_);
    case point_file_state::missing:
    case point_file_state::corrupt:
      // A truncated or foreign file is treated as "not checkpointed":
      // the point re-runs and the file is atomically replaced.
      return std::nullopt;
  }
  return std::nullopt;
}

void checkpoint_store::store_point(std::uint64_t grid_index,
                                   std::uint64_t grid_size,
                                   const scenario_point_result& point) const {
  json_value doc = json_value::make_object();
  doc.set("schema", std::string(checkpoint_schema));
  doc.set("spec_hash", spec_hash_);
  doc.set("grid_index", grid_index);
  doc.set("grid_size", grid_size);
  if (!point.label.empty()) doc.set("point", point.label);
  doc.set("assignments", point.assignments);
  doc.set("trials", point.output.trials);
  doc.set("data", point.output.json);
  write_file_atomic(point_path(grid_index), doc.dump() + "\n");
}

scenario_report merge_checkpoints(const std::vector<std::string>& dirs) {
  if (dirs.empty()) {
    throw spec_error("merge", "at least one checkpoint directory is required");
  }

  // Every manifest must name the same campaign (spec hash + grid size);
  // the first one supplies the spec echo of the merged report.
  std::string hash;
  std::uint64_t grid_size = 0;
  json_value spec;
  for (const std::string& dir : dirs) {
    const std::string path = dir + "/manifest.json";
    const std::optional<std::string> text = read_file(path);
    if (!text.has_value()) {
      throw spec_error("merge", "'" + dir +
                                    "' has no readable manifest.json — not a "
                                    "checkpoint directory (or its campaign "
                                    "never started)");
    }
    const std::optional<json_value> doc = parse_document(*text);
    const json_value* h = doc.has_value() ? doc->find("spec_hash") : nullptr;
    const json_value* size = doc.has_value() ? doc->find("grid_size") : nullptr;
    const json_value* s = doc.has_value() ? doc->find("spec") : nullptr;
    if (h == nullptr || !h->is_string() || size == nullptr ||
        !size->is_integer() || s == nullptr) {
      throw spec_error("merge",
                       "'" + path + "' is not a valid checkpoint manifest");
    }
    if (hash.empty()) {
      hash = h->as_string();
      grid_size = size->as_u64();
      spec = *s;
    } else if (h->as_string() != hash) {
      throw spec_error("merge", "'" + path + "' belongs to spec hash " +
                                    h->as_string() + " but '" + dirs.front() +
                                    "' holds spec hash " + hash +
                                    " — these directories come from "
                                    "different campaigns");
    } else if (size->as_u64() != grid_size) {
      throw spec_error("merge", "'" + path + "' reports a grid of " +
                                    std::to_string(size->as_u64()) +
                                    " point(s) but '" + dirs.front() +
                                    "' reports " + std::to_string(grid_size));
    }
  }

  scenario_report report;
  report.spec = spec;
  std::vector<std::uint64_t> missing;
  for (std::uint64_t i = 0; i < grid_size; ++i) {
    std::optional<loaded_point> merged;
    std::string merged_path;
    for (const std::string& dir : dirs) {
      const std::string path =
          dir + "/point_" + padded_index(i) + ".json";
      loaded_point loaded = load_point_file(path, i, hash);
      switch (loaded.state) {
        case point_file_state::missing:
          continue;
        case point_file_state::corrupt:
          // Unlike a resuming shard (which can recompute), the merge
          // has nothing to fall back on — fail loudly.
          throw spec_error("merge", "'" + path +
                                        "' is truncated or corrupt — delete "
                                        "it and re-run its shard");
        case point_file_state::stale:
          throw_stale(path, loaded.found_hash, hash);
        case point_file_state::ok:
          break;
      }
      if (!merged.has_value()) {
        merged = std::move(loaded);
        merged_path = path;
      } else if (!(loaded.doc == merged->doc)) {
        throw spec_error("merge", "conflicting checkpoints for grid point " +
                                      std::to_string(i) + ": '" + merged_path +
                                      "' and '" + path +
                                      "' disagree — the shards did not run "
                                      "identical campaigns");
      }
    }
    if (!merged.has_value()) {
      missing.push_back(i);
      continue;
    }
    report.total_trials += merged->point.output.trials;
    report.points.push_back(std::move(merged->point));
  }

  if (!missing.empty()) {
    std::string list;
    for (std::size_t k = 0; k < missing.size() && k < 10; ++k) {
      if (k != 0) list += ", ";
      list += std::to_string(missing[k]);
    }
    if (missing.size() > 10) list += ", ...";
    throw spec_error("merge",
                     std::to_string(missing.size()) + " of " +
                         std::to_string(grid_size) +
                         " grid point(s) have no checkpoint (indices " + list +
                         ") — run the remaining shard(s) to completion "
                         "before merging");
  }
  return report;
}

}  // namespace urmem
