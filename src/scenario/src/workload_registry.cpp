#include "urmem/scenario/workload_registry.hpp"

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <utility>

namespace urmem {

campaign_runner& campaign_pool::runner() {
  if (!runner_.has_value()) {
    runner_.emplace(config_);
    // Scheduling diagnostics go to stderr: stdout stays byte-identical
    // across thread counts.
    std::cerr << "campaign threads = " << runner_->threads() << "\n";
  }
  return *runner_;
}

workload_registry& workload_registry::instance() {
  static workload_registry registry = [] {
    workload_registry r;
    detail::register_figure_workloads(r);
    detail::register_domain_workloads(r);
    detail::register_hrm_workloads(r);
    detail::register_lifecycle_workloads(r);
    return r;
  }();
  return registry;
}

void workload_registry::add(std::string name, std::string summary,
                            std::string options_help, entry_factory factory) {
  if (contains(name)) {
    throw std::invalid_argument("workload registry: name '" + name +
                                "' is already registered");
  }
  entries_.push_back(
      {{std::move(name), std::move(summary), std::move(options_help)},
       std::move(factory)});
}

bool workload_registry::contains(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const entry& e) {
    return e.info.name == name;
  });
}

std::unique_ptr<workload> workload_registry::make(const workload_ref& ref) const {
  if (ref.name.empty()) {
    throw spec_error("workload", "scenario needs a workload (set workload=<name>)");
  }
  for (const entry& e : entries_) {
    if (e.info.name != ref.name) continue;
    std::unique_ptr<workload> instance = e.factory(ref.options);
    ref.options.check_consumed();
    return instance;
  }
  std::string known;
  for (const entry_info& info : list()) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  throw spec_error("workload", "unknown workload '" + ref.name +
                                   "' (known: " + known + ")");
}

std::vector<workload_registry::entry_info> workload_registry::list() const {
  std::vector<entry_info> infos;
  infos.reserve(entries_.size());
  for (const entry& e : entries_) infos.push_back(e.info);
  std::sort(infos.begin(), infos.end(),
            [](const entry_info& a, const entry_info& b) { return a.name < b.name; });
  return infos;
}

workload_registration::workload_registration(
    std::string name, std::string summary, std::string options_help,
    workload_registry::entry_factory factory) {
  workload_registry::instance().add(std::move(name), std::move(summary),
                                    std::move(options_help), std::move(factory));
}

std::vector<scheme_recipe> resolve_schemes(const scenario_spec& spec) {
  std::vector<scheme_recipe> recipes;
  recipes.reserve(spec.schemes.size() + (spec.regions.empty() ? 0 : 1));
  for (const scheme_ref& ref : spec.schemes) {
    recipes.push_back(scheme_registry::instance().make(ref, spec.geometry));
  }
  if (!spec.regions.empty()) {
    recipes.push_back(resolve_region_recipe(spec));
  }
  return recipes;
}

scheme_recipe resolve_region_recipe(const scenario_spec& spec) {
  if (spec.regions.empty()) {
    throw spec_error("regions", "this scenario needs a regions section");
  }
  return make_tiered_recipe(spec.geometry, spec.regions, "regions");
}

void reject_schemes(const scenario_spec& spec, std::string_view workload_name) {
  if (!spec.schemes.empty()) {
    throw spec_error("schemes",
                     "the '" + std::string(workload_name) +
                         "' workload does not use protection schemes; "
                         "remove the schemes list");
  }
  if (!spec.regions.empty()) {
    throw spec_error("regions",
                     "the '" + std::string(workload_name) +
                         "' workload does not use protection schemes; "
                         "remove the regions section");
  }
}

void reject_region_operating_points(const scenario_spec& spec,
                                    std::string_view workload_name) {
  for (std::size_t i = 0; i < spec.regions.size(); ++i) {
    const region_spec& region = spec.regions[i];
    if (!region.pcell.has_value() && !region.vdd.has_value()) continue;
    throw spec_error(
        "regions[" + std::to_string(i) + "]." +
            (region.pcell.has_value() ? "pcell" : "vdd"),
        "the '" + std::string(workload_name) +
            "' workload injects at one operating point and cannot honor "
            "per-region overrides (hrm-quality and ml-quality can)");
  }
}

std::vector<scheme_recipe> resolve_word_transform_schemes(
    const scenario_spec& spec, std::string_view workload_name) {
  std::vector<scheme_recipe> recipes = resolve_schemes(spec);
  for (std::size_t i = 0; i < recipes.size(); ++i) {
    if (recipes[i].total_spare_rows() != 0) {
      const std::string context = i < spec.schemes.size()
                                      ? "schemes[" + std::to_string(i) + "]"
                                      : "regions";
      const std::string name =
          i < spec.schemes.size() ? spec.schemes[i].name : "tiered";
      throw spec_error(
          context,
          "scheme '" + name + "' needs spare rows, which the '" +
              std::string(workload_name) +
              "' workload cannot model (it evaluates per-row word transforms)");
    }
  }
  return recipes;
}

}  // namespace urmem
