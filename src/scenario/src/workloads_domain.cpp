// Built-in domain-scenario and ablation workloads: PSNR image storage,
// single-application ML quality, BIST march coverage, spare-row
// redundancy economics and the multi-fault shift-policy ablation. The
// former example/ablation binaries are thin wrappers over these.
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>

#include "urmem/bist/bist_engine.hpp"
#include "urmem/common/table.hpp"
#include "urmem/hwmodel/overhead_model.hpp"
#include "urmem/memory/sram_array.hpp"
#include "urmem/scenario/workload_registry.hpp"
#include "urmem/scheme/row_redundancy.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/quantizer.hpp"
#include "urmem/yield/mse_distribution.hpp"

namespace urmem {
namespace {

// ------------------------------------------------------------ psnr-image

/// Frame-buffer storage PSNR across a VDD sweep — the multimedia
/// setting of the P-ECC prior art (paper Sec. 2, refs. [4, 12]).
class psnr_workload final : public workload {
 public:
  explicit psnr_workload(const option_map& options)
      : repeats_(options.get_u32("repeats", 4)),
        vdds_(options.get_double_list("vdds", "0.8,0.73,0.7,0.66")) {
    if (repeats_ < 1) {
      throw spec_error(options.field_name("repeats"), "must be at least 1");
    }
    if (vdds_.empty()) {
      throw spec_error(options.field_name("vdds"),
                       "needs at least one voltage");
    }
    for (const double vdd : vdds_) {
      if (vdd <= 0.0 || vdd > 2.0) {
        throw spec_error(options.field_name("vdds"),
                         "voltages must be in (0, 2] volts");
      }
    }
  }

  workload_output run(const scenario_spec& spec,
                      campaign_pool& pool) const override {
    // The VDD sweep below defines the operating point; per-region
    // overrides would silently contradict it.
    reject_region_operating_points(spec, "psnr-image");
    const std::vector<scheme_recipe> recipes = resolve_schemes(spec);
    if (recipes.empty()) {
      throw spec_error("schemes", "psnr-image needs at least one scheme");
    }
    campaign_runner& runner = pool.runner();
    const cell_failure_model model = spec.failure_model();
    const auto app = make_image_app(spec.seeds.app);
    const double clean_psnr =
        app->evaluate(matrix_quantizer().roundtrip(app->train_features()));

    std::ostringstream out;
    out << "Frame buffer: " << app->train_features().rows() << " x "
        << app->train_features().cols() << " image, Q15.16 words in "
        << spec.geometry.size_label() << " tiles.\n"
        << "Quantization-only PSNR (fault-free): "
        << format_double(clean_psnr, 4) << " dB\n\n";

    std::vector<std::string> headers{"VDD [V]", "Pcell"};
    for (const scheme_recipe& recipe : recipes) {
      headers.push_back("PSNR " + recipe.display_name);
    }
    console_table table(headers);

    workload_output output;
    output.json = json_value::make_object();
    output.json.set("clean_psnr_db", clean_psnr);
    json_value points = json_value::make_array();

    // The (vdd x scheme) grid is sharded over the campaign pool: every
    // scheme sees the identical fault stream at each voltage (one named
    // stream per grid cell), so columns stay comparable.
    const std::size_t grid = vdds_.size() * recipes.size();
    const std::uint64_t trials = grid * repeats_;
    const std::vector<double> psnrs = runner.map<double>(
        trials, [&](std::uint64_t trial, rng&) {
          const std::uint64_t cell = trial / repeats_;
          const std::uint64_t repeat = trial % repeats_;
          const std::uint64_t vdd_index = cell / recipes.size();
          const double vdd = vdds_[vdd_index];
          const scheme_recipe& recipe = recipes[cell % recipes.size()];
          const double pcell = model.pcell(vdd);
          // Scheme-independent stream keyed by the voltage INDEX:
          // every scheme stores through the same manufactured fault
          // population at this (vdd, repeat), and integer keys stay
          // locale-proof and collision-free.
          rng fault_gen = named_stream_rng(
              spec.seeds.root,
              "psnr.faults." + std::to_string(vdd_index) + "." +
                  std::to_string(repeat));
          storage_config storage = spec.storage(recipe.spare_rows);
          storage.regions = recipe.regions;
          const matrix stored = store_and_readback(
              app->train_features(), storage, recipe.factory,
              binomial_fault_injector(pcell, spec.fault.polarity), fault_gen);
          return app->evaluate(stored);
        });
    output.trials = runner.last_stats().trials;

    for (std::size_t v = 0; v < vdds_.size(); ++v) {
      const double vdd = vdds_[v];
      const double pcell = model.pcell(vdd);
      std::vector<std::string> row{format_double(vdd, 3),
                                   format_scientific(pcell, 1)};
      json_value point = json_value::make_object();
      point.set("vdd", vdd);
      point.set("pcell", pcell);
      json_value scheme_results = json_value::make_array();
      for (std::size_t s = 0; s < recipes.size(); ++s) {
        double total = 0.0;
        for (unsigned r = 0; r < repeats_; ++r) {
          total += psnrs[(v * recipes.size() + s) * repeats_ + r];
        }
        const double psnr = total / repeats_;
        row.push_back(format_double(psnr, 4) + " dB");
        json_value entry = json_value::make_object();
        entry.set("name", recipes[s].display_name);
        entry.set("psnr_db", psnr);
        scheme_results.push_back(std::move(entry));
      }
      point.set("schemes", std::move(scheme_results));
      points.push_back(std::move(point));
      table.add_row(std::move(row));
    }
    table.print(out);

    output.json.set("points", std::move(points));
    output.text = out.str();
    return output;
  }

 private:
  unsigned repeats_;
  std::vector<double> vdds_;
};

// ------------------------------------------------------------ ml-quality

/// One application stored through each scheme at one operating point —
/// the end-to-end walk of the knn/elasticnet example binaries.
class ml_quality_workload final : public workload {
 public:
  explicit ml_quality_workload(const option_map& options)
      : app_name_(options.get_string("app", "knn")) {
    if (!is_known_application(app_name_)) {
      throw spec_error(options.field_name("app"),
                       "unknown application \"" + app_name_ +
                           "\" (valid: elasticnet, pca, knn, image)");
    }
  }

  workload_output run(const scenario_spec& spec,
                      campaign_pool& /*pool*/) const override {
    const std::vector<scheme_recipe> recipes = resolve_schemes(spec);
    if (recipes.empty()) {
      throw spec_error("schemes", "ml-quality needs at least one scheme");
    }
    // A regions-only spec whose every region carries its own operating
    // point needs no spec-level one; uniform scheme entries do, and the
    // per-region fallback path resolves (and diagnoses) it on demand.
    const bool has_spec_point =
        spec.fault.pcell.has_value() || spec.fault.vdd.has_value();
    const double pcell = has_spec_point || !spec.schemes.empty()
                             ? spec.resolved_pcell("ml-quality")
                             : 0.0;
    const cell_failure_model model = spec.failure_model();
    const auto app = make_application(app_name_, spec.seeds.app);
    const double clean = app->evaluate(app->train_features());

    std::ostringstream out;
    out << app->name() << " (" << app->dataset_name()
        << ", metric: " << app->metric_name() << ") with training data in a "
        << spec.geometry.size_label() << "-tiled unreliable SRAM.\n";
    if (has_spec_point || !spec.schemes.empty()) {
      out << "Operating point: Pcell = " << format_scientific(pcell, 2);
      // Pcell = 0 (explicit fault-free point) has no finite VDD preimage.
      if (pcell > 0.0) {
        out << " (VDD ~ " << format_double(model.vdd_for_pcell(pcell), 3)
            << " V in the 28nm-class cell model)";
      }
      out << ".\n\n";
    } else {
      out << "Operating point: per-region overrides (regions section).\n\n";
    }
    out << "Fault-free metric on the held-out set: " << format_double(clean, 4)
        << "\n\n";

    workload_output output;
    output.json = json_value::make_object();
    output.json.set("app", app->name());
    output.json.set("pcell", pcell);
    output.json.set("clean_metric", clean);
    json_value scheme_results = json_value::make_array();

    console_table table({"scheme", "storage cols", "injected faults",
                         "corrected", "uncorrectable", "metric", "normalized"});
    for (std::size_t i = 0; i < recipes.size(); ++i) {
      const scheme_recipe& recipe = recipes[i];
      // Identical fault stream for every scheme (shared named stream).
      rng gen = named_stream_rng(spec.seeds.root, "quality.faults");
      pipeline_stats stats;
      storage_config storage = spec.storage(recipe.spare_rows);
      storage.regions = recipe.regions;
      // The spec-section tiered recipe (appended after the uniform
      // baselines) may carry per-region operating points; honor them
      // with the region-segmented injector. Uniform recipes (and
      // `tiered:` compact entries) inject at the spec point.
      fault_injector inject =
          binomial_fault_injector(pcell, spec.fault.polarity);
      if (i == spec.schemes.size() && !spec.regions.empty()) {
        std::vector<region_operating_point> points;
        points.reserve(recipe.regions.size());
        for (std::size_t r = 0; r < recipe.regions.size(); ++r) {
          points.push_back({recipe.regions[r],
                            spec.resolved_region_pcell(spec.regions[r],
                                                       "ml-quality")});
        }
        inject = region_fault_injector(std::move(points), spec.fault.polarity);
      }
      const matrix stored =
          store_and_readback(app->train_features(), storage, recipe.factory,
                             inject, gen, &stats);
      const double metric = app->evaluate(stored);
      // storage_bits is row-count independent; a 1-row probe instance
      // avoids building a throwaway rows-sized LUT per scheme.
      const unsigned storage_cols = recipe.factory(1)->storage_bits();
      table.add_row({recipe.display_name, std::to_string(storage_cols),
                     std::to_string(stats.injected_faults),
                     std::to_string(stats.corrected_words),
                     std::to_string(stats.uncorrectable_words),
                     format_double(metric, 4), format_double(metric / clean, 4)});

      json_value entry = json_value::make_object();
      entry.set("name", recipe.display_name);
      entry.set("storage_bits", storage_cols);
      entry.set("injected_faults", stats.injected_faults);
      entry.set("corrected_words", stats.corrected_words);
      entry.set("uncorrectable_words", stats.uncorrectable_words);
      entry.set("metric", metric);
      entry.set("normalized", metric / clean);
      scheme_results.push_back(std::move(entry));
      ++output.trials;
    }
    table.print(out);

    output.json.set("schemes", std::move(scheme_results));
    output.text = out.str();
    return output;
  }

 private:
  std::string app_name_;
};

// ------------------------------------------------------------ bist-march

/// March-test fault discovery on a manufactured array — integer-only,
/// which also makes it the cross-platform CI smoke golden.
class bist_workload final : public workload {
 public:
  explicit bist_workload(const option_map& options)
      : faults_(options.get_u64("faults", 16)),
        nfm_(options.get_u32("nfm", 5)),
        model_(options.get_bool("model", false)) {}

  workload_output run(const scenario_spec& spec,
                      campaign_pool& /*pool*/) const override {
    // BIST is a single deterministic pass; no campaign pool is spawned.
    reject_schemes(spec, "bist-march");
    validate_shuffle_design(spec.geometry, nfm_, "workload.nfm");
    const array_geometry geometry{spec.geometry.rows_per_tile,
                                  spec.geometry.word_bits};
    if (faults_ > geometry.cells()) {
      throw spec_error("workload.faults", "more faults than cells");
    }
    // model=true derives the manufactured faults from the critical-
    // voltage cell model at fault.vdd (aged by fault.age_hours) instead
    // of sampling `faults` positions — the aging-BIST scenario: sweeping
    // fault.age_hours grows the map monotonically (supersets), exactly
    // what re-running BIST at every POST is for.
    fault_map injected(geometry);
    if (model_) {
      if (!spec.fault.vdd.has_value()) {
        throw spec_error("fault.vdd",
                         "workload.model=true derives faults from the cell "
                         "model and needs the fault.vdd operating point");
      }
      injected = spec.failure_model().faults_at_voltage(geometry,
                                                        *spec.fault.vdd);
    } else {
      rng gen = named_stream_rng(spec.seeds.root, "bist.faults");
      injected =
          sample_fault_map_exact(geometry, faults_, gen, spec.fault.polarity);
    }
    sram_array array(injected);

    shuffle_scheme scheme(geometry.rows, geometry.width, nfm_);
    const bist_engine engine;
    const bist_result result = engine.run_and_program(array, scheme);

    std::ostringstream out;
    out << "Array " << geometry.rows << " x " << geometry.width << " ("
        << spec.geometry.size_label() << "), " << injected.fault_count()
        << " manufactured faulty cells, polarity "
        << to_string(spec.fault.polarity) << ".\n"
        << "BIST (" << engine.algorithm().name << "): found "
        << result.faults.fault_count() << " faults using " << result.reads
        << " reads / " << result.writes << " writes.\n"
        << "Traditional zero-failure verdict: "
        << (result.traditional_accept() ? "accept" : "reject")
        << "; FM-LUT programmed with nFM=" << nfm_ << " ("
        << scheme.shuffler().segment_count() << " shift values).\n";

    workload_output output;
    output.trials = 1;
    output.json = json_value::make_object();
    output.json.set("rows", geometry.rows);
    output.json.set("width", geometry.width);
    output.json.set("injected_faults", injected.fault_count());
    output.json.set("found_faults", result.faults.fault_count());
    output.json.set("reads", result.reads);
    output.json.set("writes", result.writes);
    output.json.set("pass", result.pass);
    output.json.set("nfm", nfm_);
    output.text = out.str();
    return output;
  }

 private:
  std::uint64_t faults_;
  unsigned nfm_;
  bool model_;
};

// ------------------------------------------------------ redundancy-yield

/// Spare-row repair economics across Pcell (the Sec. 2 ablation).
class redundancy_yield_workload final : public workload {
 public:
  explicit redundancy_yield_workload(const option_map& options)
      : mc_runs_(options.get_u32("runs", 400)),
        yield_target_(options.get_double("yield", 0.99)),
        pcells_(options.get_double_list(
            "pcells", "1e-7,1e-6,5e-6,1e-5,5e-5,1e-4,5e-4,1e-3")) {
    if (mc_runs_ < 1) {
      throw spec_error(options.field_name("runs"), "must be at least 1");
    }
    if (yield_target_ <= 0.0 || yield_target_ >= 1.0) {
      throw spec_error(options.field_name("yield"), "must be in (0, 1)");
    }
    if (pcells_.empty()) {
      throw spec_error(options.field_name("pcells"),
                       "needs at least one failure probability");
    }
  }

  workload_output run(const scenario_spec& spec,
                      campaign_pool& /*pool*/) const override {
    // Incremental spare search is inherently sequential: no pool.
    reject_schemes(spec, "redundancy-yield");
    const std::uint32_t rows = spec.geometry.rows_per_tile;
    const std::uint32_t width = spec.geometry.word_bits;
    rng gen = named_stream_rng(spec.seeds.root, "redundancy.mc");

    const sram_macro_model sram = sram_macro_model::fdsoi_28nm();
    const overhead_model model(gate_library::fdsoi_28nm(), sram,
                               array_geometry{rows, width});
    const double ecc_area = model.secded(hamming_secded(width)).area_um2;
    const double nfm1_area = model.shuffle(1).area_um2;
    const double row_area = width * sram.cell_area_um2 / sram.array_efficiency;

    std::ostringstream out;
    out << spec.geometry.size_label() << " array (" << rows << " x " << width
        << "), repair yield target "
        << format_percent(yield_target_, 0) << ", " << mc_runs_
        << " MC arrays per spare-count candidate.\n"
        << "Reference area overheads: H(" << hamming_secded(width).codeword_bits()
        << "," << width << ") ECC = " << format_double(ecc_area, 4)
        << " um^2, nFM=1 shuffle = " << format_double(nfm1_area, 4)
        << " um^2.\n\n";

    workload_output output;
    output.json = json_value::make_object();
    output.json.set("yield_target", yield_target_);
    output.json.set("mc_runs", std::uint64_t{mc_runs_});
    json_value points = json_value::make_array();

    console_table table({"Pcell", "E[faulty rows]",
                         "spares for " + format_percent(yield_target_, 0) +
                             " yield",
                         "area overhead [um^2]", "vs ECC", "vs nFM=1 shuffle"});
    for (const double pcell : pcells_) {
      const double row_fail =
          1.0 - std::pow(1.0 - pcell, static_cast<double>(width));
      const double expected_faulty = row_fail * rows;
      const auto spares = spares_for_yield(rows, width, pcell, yield_target_,
                                           rows, mc_runs_, gen);
      json_value point = json_value::make_object();
      point.set("pcell", pcell);
      point.set("expected_faulty_rows", expected_faulty);
      if (!spares.has_value()) {
        table.add_row({format_scientific(pcell, 1),
                       format_double(expected_faulty, 3),
                       "> " + std::to_string(rows) + " (infeasible)", "-", "-",
                       "-"});
        point.set("spares", json_value());
      } else {
        const double area = *spares * row_area;
        table.add_row({format_scientific(pcell, 1),
                       format_double(expected_faulty, 3),
                       std::to_string(*spares), format_double(area, 4),
                       format_double(area / ecc_area, 3) + "x",
                       format_double(area / nfm1_area, 3) + "x"});
        point.set("spares", *spares);
        point.set("area_um2", area);
        point.set("area_vs_ecc", area / ecc_area);
        point.set("area_vs_nfm1", area / nfm1_area);
      }
      points.push_back(std::move(point));
      ++output.trials;
    }
    table.print(out);

    output.json.set("points", std::move(points));
    output.text = out.str();
    return output;
  }

 private:
  std::uint32_t mc_runs_;
  double yield_target_;
  std::vector<double> pcells_;
};

// ----------------------------------------------------- multifault-policy

/// Multi-fault FM-LUT programming policy ablation (min-MSE vs
/// first-fault) over a Pcell x nFM grid.
class multifault_policy_workload final : public workload {
 public:
  explicit multifault_policy_workload(const option_map& options)
      : runs_(options.get_u64("runs", 200'000)),
        n_max_(options.get_u64("nmax", 400)),
        pcells_(options.get_double_list("pcells", "5e-6,1e-4,1e-3")),
        nfms_(options.get_double_list("nfms", "2,5")) {
    if (runs_ < 1) {
      throw spec_error(options.field_name("runs"), "must be at least 1");
    }
    if (pcells_.empty() || nfms_.empty()) {
      throw spec_error(
          options.field_name(pcells_.empty() ? "pcells" : "nfms"),
          "needs at least one value");
    }
  }

  workload_output run(const scenario_spec& spec,
                      campaign_pool& /*pool*/) const override {
    // compute_mse_cdf owns its deterministic stream: no pool.
    reject_schemes(spec, "multifault-policy");
    const std::uint32_t rows = spec.geometry.rows_per_tile;
    const unsigned width = spec.geometry.word_bits;
    // Same pre-checks as the shuffle scheme's registry entry, so a bad
    // nfm or word width blames a spec field instead of tripping a
    // bit_shuffler contract mid-run.
    for (const double nfm : nfms_) {
      if (nfm < 1.0 || nfm > 64.0 || nfm != std::floor(nfm)) {
        throw spec_error("workload.nfms", "entries must be small integers");
      }
      validate_shuffle_design(spec.geometry, static_cast<unsigned>(nfm),
                              "workload.nfms");
    }

    mse_cdf_config config;
    config.total_runs = runs_;
    config.seed = spec.seeds.root;
    config.n_max = n_max_;

    workload_output output;
    output.json = json_value::make_object();
    json_value points = json_value::make_array();

    std::ostringstream out;
    console_table table({"Pcell", "nFM", "policy", "MSE @ yield 90%",
                         "MSE @ yield 99%"});
    for (const double pcell : pcells_) {
      for (const double nfm_value : nfms_) {
        const auto n_fm = static_cast<unsigned>(nfm_value);
        for (const shift_policy policy :
             {shift_policy::min_mse, shift_policy::first_fault}) {
          const auto scheme = make_scheme_shuffle(rows, width, n_fm, policy);
          const empirical_cdf cdf = compute_mse_cdf(*scheme, rows, pcell, config);
          const double q90 = mse_for_yield(cdf, 0.90);
          const double q99 = mse_for_yield(cdf, 0.99);
          const char* policy_name =
              policy == shift_policy::min_mse ? "min-MSE" : "first-fault";
          table.add_row({format_scientific(pcell, 1), std::to_string(n_fm),
                         policy_name, format_scientific(q90, 3),
                         format_scientific(q99, 3)});
          json_value point = json_value::make_object();
          point.set("pcell", pcell);
          point.set("nfm", n_fm);
          point.set("policy", policy_name);
          point.set("mse_at_yield_90", q90);
          point.set("mse_at_yield_99", q99);
          points.push_back(std::move(point));
          ++output.trials;
        }
      }
    }
    table.print(out);

    output.json.set("points", std::move(points));
    output.text = out.str();
    return output;
  }

 private:
  std::uint64_t runs_;
  std::uint64_t n_max_;
  std::vector<double> pcells_;
  std::vector<double> nfms_;
};

}  // namespace

namespace detail {

void register_domain_workloads(workload_registry& registry) {
  registry.add("psnr-image",
               "frame-buffer PSNR across a VDD sweep (Sec. 2 multimedia setting)",
               "repeats=4 vdds=0.8,0.73,0.7,0.66",
               [](const option_map& options) {
                 return std::make_unique<psnr_workload>(options);
               });
  registry.add("ml-quality",
               "one application through every scheme at one operating point",
               "app=knn",
               [](const option_map& options) {
                 return std::make_unique<ml_quality_workload>(options);
               });
  registry.add("bist-march",
               "march-test fault discovery + FM-LUT programming (Sec. 3 step 1)",
               "faults=16 nfm=5 model=false",
               [](const option_map& options) {
                 return std::make_unique<bist_workload>(options);
               });
  registry.add("redundancy-yield",
               "spare-row repair economics across Pcell (Sec. 2 ablation)",
               "runs=400 yield=0.99 pcells=...",
               [](const option_map& options) {
                 return std::make_unique<redundancy_yield_workload>(options);
               });
  registry.add("multifault-policy",
               "min-MSE vs first-fault FM-LUT programming ablation",
               "runs=200000 nmax=400 pcells=... nfms=2,5",
               [](const option_map& options) {
                 return std::make_unique<multifault_policy_workload>(options);
               });
}

}  // namespace detail

}  // namespace urmem
