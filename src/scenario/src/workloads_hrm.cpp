// The heterogeneous-reliability payoff workload (`hrm-quality`): one
// data set stored through region-tiered tiles — each region with its
// own scheme, spare pool, and fault operating point — with the report
// broken out PER REGION: injected faults, spare-row repairs, residual
// faults, word-level corruption and the region's analytic MSE, next to
// whole-store quality and any uniform baseline schemes the spec lists.
//
// Determinism: trials shard over the campaign pool on per-trial streams
// (bit-identical at any thread count); `app=synthetic` stores a
// seed-derived integer pattern so every reported count is integer-exact
// across platforms (the CI golden runs this mode), while the analytic
// MSE is a sum of powers of four — dyadic, hence also bit-stable.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>

#include "urmem/common/table.hpp"
#include "urmem/scenario/workload_registry.hpp"
#include "urmem/sim/applications.hpp"
#include "urmem/sim/quantizer.hpp"

namespace urmem {
namespace {

/// Integer counters of one region, summed over tiles and trials.
struct region_counts {
  std::uint64_t injected_faults = 0;   ///< region data rows + its spares
  std::uint64_t repaired_rows = 0;     ///< rows fused onto the region pool
  std::uint64_t residual_rows = 0;     ///< faulty rows left visible
  std::uint64_t residual_faults = 0;   ///< faults in those rows
  std::uint64_t word_errors = 0;       ///< readback words != written words
  std::uint64_t error_lsb_sum = 0;     ///< sum |readback - written| in LSBs
  double analytic_mse_sum = 0.0;       ///< Eq. (6) per tile, summed

  void operator+=(const region_counts& other) {
    injected_faults += other.injected_faults;
    repaired_rows += other.repaired_rows;
    residual_rows += other.residual_rows;
    residual_faults += other.residual_faults;
    word_errors += other.word_errors;
    error_lsb_sum += other.error_lsb_sum;
    analytic_mse_sum += other.analytic_mse_sum;
  }
};

/// One trial's outputs (merged in trial order after the pool drains).
struct trial_result {
  std::vector<region_counts> regions;
  std::uint64_t corrected_words = 0;
  std::uint64_t uncorrectable_words = 0;
  std::uint64_t tiles = 0;
  double metric = 0.0;  ///< app modes only
  std::vector<std::uint64_t> baseline_word_errors;
  std::vector<double> baseline_metrics;
};

class hrm_workload final : public workload {
 public:
  explicit hrm_workload(const option_map& options)
      : app_name_(options.get_string("app", "synthetic")),
        trials_(options.get_u32("trials", 1)),
        tiles_(options.get_u32("tiles", 1)) {
    if (app_name_ != "synthetic" && !is_known_application(app_name_)) {
      throw spec_error(options.field_name("app"),
                       "unknown application \"" + app_name_ +
                           "\" (valid: synthetic, elasticnet, pca, knn, image)");
    }
    if (trials_ < 1) {
      throw spec_error(options.field_name("trials"), "must be at least 1");
    }
    if (tiles_ < 1) {
      throw spec_error(options.field_name("tiles"), "must be at least 1");
    }
    // exact_faults=n0,n1,... pins each region's per-tile fault count —
    // pure integer sampling, so golden runs diff bit-identically across
    // platforms (the binomial path draws through libm).
    for (const double n : options.get_double_list("exact_faults", "")) {
      if (n < 0.0 || n != std::floor(n)) {
        throw spec_error(options.field_name("exact_faults"),
                         "entries must be non-negative integers");
      }
      exact_faults_.push_back(static_cast<std::uint64_t>(n));
    }
  }

  workload_output run(const scenario_spec& spec,
                      campaign_pool& pool) const override {
    const scheme_recipe tiered = resolve_region_recipe(spec);
    // The uniform comparison set (spec.schemes) rides along as
    // baselines; resolved directly so the tiered recipe is built once.
    std::vector<scheme_recipe> baselines;
    baselines.reserve(spec.schemes.size());
    for (const scheme_ref& ref : spec.schemes) {
      baselines.push_back(scheme_registry::instance().make(ref, spec.geometry));
    }

    if (!exact_faults_.empty()) {
      if (exact_faults_.size() != tiered.regions.size()) {
        throw spec_error("workload.exact_faults",
                         "needs exactly one fault count per region (" +
                             std::to_string(tiered.regions.size()) + ")");
      }
      // Capacity is measured over the manufactured storage width (the
      // widest tier's columns), which is what the injector covers.
      const unsigned storage_width = tiered.factory(1)->storage_bits();
      for (std::size_t r = 0; r < tiered.regions.size(); ++r) {
        const std::uint64_t cells =
            std::uint64_t{tiered.regions[r].rows() +
                          tiered.regions[r].spare_rows} *
            storage_width;
        if (exact_faults_[r] > cells) {
          throw spec_error("workload.exact_faults",
                           "region " + spec.regions[r].range_label() +
                               " has only " + std::to_string(cells) +
                               " cells, cannot hold " +
                               std::to_string(exact_faults_[r]) + " faults");
        }
      }
      // Pinned counts define the whole operating point; a pcell/vdd
      // override alongside them would be silently dead configuration.
      for (std::size_t r = 0; r < spec.regions.size(); ++r) {
        if (!spec.regions[r].pcell.has_value() &&
            !spec.regions[r].vdd.has_value()) {
          continue;
        }
        throw spec_error(
            "regions[" + std::to_string(r) + "]." +
                (spec.regions[r].pcell.has_value() ? "pcell" : "vdd"),
            "exact_faults pins every region's fault count; remove the "
            "per-region operating-point override (or drop exact_faults)");
      }
    }
    // Per-region operating points, spec point as the fallback (unused,
    // and not required, when exact per-region counts are pinned).
    std::vector<region_operating_point> points;
    points.reserve(tiered.regions.size());
    for (std::size_t r = 0; r < spec.regions.size(); ++r) {
      points.push_back(
          {tiered.regions[r],
           exact_faults_.empty()
               ? spec.resolved_region_pcell(spec.regions[r], "hrm-quality")
               : 0.0});
    }

    // The stored data: a seed-derived integer pattern (deterministic
    // across platforms), or an application's quantized training set.
    const matrix_quantizer quantizer(
        fixed_point_codec(spec.geometry.word_bits, spec.geometry.frac_bits));
    std::unique_ptr<application> app;
    std::vector<word_t> words;
    double clean_metric = 0.0;
    if (app_name_ == "synthetic") {
      rng data_gen = named_stream_rng(spec.seeds.app, "hrm.data");
      words.resize(static_cast<std::size_t>(tiles_) *
                   spec.geometry.rows_per_tile);
      for (word_t& word : words) {
        word = data_gen() & word_mask(spec.geometry.word_bits);
      }
    } else {
      app = make_application(app_name_, spec.seeds.app);
      words = quantizer.to_words(app->train_features());
      clean_metric = app->evaluate(quantizer.roundtrip(app->train_features()));
    }

    // Baselines inject at the spec-level operating point; resolve it
    // once up front so a missing point fails before any trial runs. In
    // exact mode they draw the same total count instead (integer path).
    const double baseline_pcell =
        baselines.empty() || !exact_faults_.empty()
            ? 0.0
            : spec.resolved_pcell("hrm-quality");

    campaign_runner& runner = pool.runner();
    const std::vector<trial_result> results = runner.map<trial_result>(
        trials_, [&](std::uint64_t /*trial*/, rng& gen) {
          return run_trial(spec, tiered, baselines, baseline_pcell, points,
                           quantizer, app.get(), words, gen);
        });

    // Trial-ordered reduction keeps every count (and the dyadic MSE
    // sums) bit-identical at any thread count.
    trial_result total;
    total.regions.resize(tiered.regions.size());
    total.baseline_word_errors.resize(baselines.size(), 0);
    total.baseline_metrics.resize(baselines.size(), 0.0);
    for (const trial_result& r : results) {
      for (std::size_t i = 0; i < r.regions.size(); ++i) {
        total.regions[i] += r.regions[i];
      }
      total.corrected_words += r.corrected_words;
      total.uncorrectable_words += r.uncorrectable_words;
      total.tiles += r.tiles;
      total.metric += r.metric;
      for (std::size_t b = 0; b < baselines.size(); ++b) {
        total.baseline_word_errors[b] += r.baseline_word_errors[b];
        total.baseline_metrics[b] += r.baseline_metrics[b];
      }
    }

    return render(spec, tiered, baselines, points, total, clean_metric);
  }

 private:
  /// Region owning data row `row`, by the spec's ordered ranges.
  static std::size_t region_of(const std::vector<memory_region>& regions,
                               std::uint32_t row) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (row <= regions[r].last_row) return r;
    }
    return regions.size() - 1;
  }

  trial_result run_trial(const scenario_spec& spec,
                         const scheme_recipe& tiered,
                         const std::vector<scheme_recipe>& baselines,
                         double baseline_pcell,
                         const std::vector<region_operating_point>& points,
                         const matrix_quantizer& quantizer, const application* app,
                         const std::vector<word_t>& words, rng& gen) const {
    const std::uint32_t rows = spec.geometry.rows_per_tile;
    const fault_injector inject =
        exact_faults_.empty()
            ? region_fault_injector(points, spec.fault.polarity)
            : region_exact_fault_injector(tiered.regions, exact_faults_,
                                          spec.fault.polarity);

    trial_result result;
    result.regions.resize(tiered.regions.size());
    std::vector<word_t> restored(words.size());

    std::size_t cursor = 0;
    while (cursor < words.size()) {
      const auto tile_words =
          std::min<std::size_t>(rows, words.size() - cursor);
      protected_memory memory(rows, tiered.factory(rows), tiered.regions);
      fault_map faults = inject(memory.storage_geometry(), gen);

      // Injected faults per region: data rows route by range, spare
      // rows by the region-order pool layout.
      for (const fault& f : faults.all_faults()) {
        if (f.row < rows) {
          result.regions[region_of(tiered.regions, f.row)].injected_faults++;
          continue;
        }
        for (std::size_t r = tiered.regions.size(); r-- > 0;) {
          if (f.row >= memory.region_spare_base(r)) {
            result.regions[r].injected_faults++;
            break;
          }
        }
      }
      memory.set_fault_map(std::move(faults));

      const auto& remaps = memory.row_remaps();
      for (const auto& [logical, spare] : remaps) {
        (void)spare;
        result.regions[region_of(tiered.regions, logical)].repaired_rows++;
      }
      // Residual = faults still visible through the remapped address
      // space: faulty, unrepaired data rows — counting only columns the
      // row's own tier stores (faults in a wider sibling's surplus
      // columns are harmless and never reach the repair pass either).
      const fault_map& installed = memory.array().faults();
      for (const std::uint32_t row : installed.faulty_rows()) {
        if (row >= rows) continue;  // spares only serve remapped rows
        const auto it = std::lower_bound(
            remaps.begin(), remaps.end(), row,
            [](const auto& remap, std::uint32_t key) {
              return remap.first < key;
            });
        if (it != remaps.end() && it->first == row) continue;
        const std::size_t r = region_of(tiered.regions, row);
        const unsigned region_bits =
            tiered.regions[r].storage_bits == 0
                ? memory.scheme().storage_bits()
                : tiered.regions[r].storage_bits;
        std::uint64_t visible = 0;
        for (const fault& f : installed.faults_in_row(row)) {
          if (f.col < region_bits) ++visible;
        }
        if (visible == 0) continue;
        result.regions[r].residual_rows++;
        result.regions[r].residual_faults += visible;
      }

      memory.write_block(0, std::span<const word_t>(words).subspan(cursor,
                                                                   tile_words));
      protected_memory::block_stats stats;
      memory.read_block(
          0, std::span<word_t>(restored).subspan(cursor, tile_words), &stats);
      result.corrected_words += stats.corrected;
      result.uncorrectable_words += stats.uncorrectable;

      for (std::size_t i = 0; i < tile_words; ++i) {
        const word_t written = words[cursor + i];
        const word_t read = restored[cursor + i];
        if (written == read) continue;
        region_counts& counts = result.regions[region_of(
            tiered.regions, static_cast<std::uint32_t>(i))];
        counts.word_errors++;
        counts.error_lsb_sum += written > read ? written - read : read - written;
      }
      for (std::size_t r = 0; r < tiered.regions.size(); ++r) {
        result.regions[r].analytic_mse_sum += memory.analytic_mse(
            tiered.regions[r].first_row, tiered.regions[r].last_row);
      }
      ++result.tiles;
      cursor += tile_words;
    }

    if (app != nullptr) {
      result.metric = app->evaluate(quantizer.from_words(
          restored, app->train_features().rows(), app->train_features().cols()));
    }

    // Uniform baselines on the same trial stream, drawn after the
    // tiered store (sequential draws keep the trial deterministic).
    std::uint64_t exact_total = 0;
    for (const std::uint64_t n : exact_faults_) exact_total += n;
    for (const scheme_recipe& baseline : baselines) {
      storage_config storage = spec.storage(baseline.spare_rows);
      storage.regions = baseline.regions;
      const matrix_quantizer& q = quantizer;
      std::vector<word_t> base_restored(words.size());
      std::size_t base_cursor = 0;
      const fault_injector base_inject =
          exact_faults_.empty()
              ? binomial_fault_injector(baseline_pcell, spec.fault.polarity)
              : exact_fault_injector(exact_total, spec.fault.polarity);
      while (base_cursor < words.size()) {
        const auto tile_words =
            std::min<std::size_t>(rows, words.size() - base_cursor);
        protected_memory memory =
            storage.regions.empty()
                ? protected_memory(rows, baseline.factory(rows),
                                   storage.spare_rows_per_tile)
                : protected_memory(rows, baseline.factory(rows),
                                   storage.regions);
        memory.set_fault_map(base_inject(memory.storage_geometry(), gen));
        memory.write_block(0, std::span<const word_t>(words).subspan(
                                  base_cursor, tile_words));
        memory.read_block(0, std::span<word_t>(base_restored)
                                 .subspan(base_cursor, tile_words));
        base_cursor += tile_words;
      }
      std::uint64_t errors = 0;
      for (std::size_t i = 0; i < words.size(); ++i) {
        if (words[i] != base_restored[i]) ++errors;
      }
      result.baseline_word_errors.push_back(errors);
      result.baseline_metrics.push_back(
          app != nullptr
              ? app->evaluate(q.from_words(base_restored,
                                           app->train_features().rows(),
                                           app->train_features().cols()))
              : 0.0);
    }
    return result;
  }

  workload_output render(const scenario_spec& spec, const scheme_recipe& tiered,
                         const std::vector<scheme_recipe>& baselines,
                         const std::vector<region_operating_point>& points,
                         const trial_result& total, double clean_metric) const {
    std::ostringstream out;
    out << spec.geometry.size_label() << " tiles (" << spec.geometry.rows_per_tile
        << " x " << spec.geometry.word_bits << "), "
        << spec.regions.size() << " reliability region(s), " << trials_
        << " trial(s), data: " << app_name_ << ".\n"
        << "Tiered design: " << tiered.display_name << "\n\n";

    workload_output output;
    output.trials = trials_;
    output.json = json_value::make_object();
    output.json.set("app", app_name_);
    output.json.set("trials", std::uint64_t{trials_});
    output.json.set("tiles", total.tiles);

    const double tile_samples =
        total.tiles != 0 ? static_cast<double>(total.tiles) : 1.0;
    console_table table({"region", "scheme", "spares",
                         exact_faults_.empty() ? "Pcell" : "faults/tile",
                         "injected", "repaired", "residual", "word errors",
                         "MSE (Eq. 6)"});
    json_value region_results = json_value::make_array();
    std::uint64_t injected = 0;
    std::uint64_t residual = 0;
    std::uint64_t word_errors = 0;
    for (std::size_t r = 0; r < spec.regions.size(); ++r) {
      const region_spec& region = spec.regions[r];
      const region_counts& counts = total.regions[r];
      const double mse = counts.analytic_mse_sum / tile_samples;
      table.add_row({region.range_label(), region.scheme.name,
                     std::to_string(tiered.regions[r].spare_rows),
                     exact_faults_.empty()
                         ? format_scientific(points[r].pcell, 2)
                         : std::to_string(exact_faults_[r]),
                     std::to_string(counts.injected_faults),
                     std::to_string(counts.repaired_rows),
                     std::to_string(counts.residual_faults),
                     std::to_string(counts.word_errors),
                     format_scientific(mse, 3)});
      json_value entry = json_value::make_object();
      entry.set("rows", region.range_label());
      entry.set("scheme", region.scheme.name);
      entry.set("spare_rows", tiered.regions[r].spare_rows);
      if (exact_faults_.empty()) {
        entry.set("pcell", points[r].pcell);
      } else {
        entry.set("exact_faults_per_tile", exact_faults_[r]);
      }
      entry.set("injected_faults", counts.injected_faults);
      entry.set("repaired_rows", counts.repaired_rows);
      entry.set("residual_rows", counts.residual_rows);
      entry.set("residual_faults", counts.residual_faults);
      entry.set("word_errors", counts.word_errors);
      entry.set("error_lsb_sum", counts.error_lsb_sum);
      entry.set("analytic_mse", mse);
      region_results.push_back(std::move(entry));
      injected += counts.injected_faults;
      residual += counts.residual_faults;
      word_errors += counts.word_errors;
    }
    table.print(out);
    output.json.set("regions", std::move(region_results));

    json_value totals = json_value::make_object();
    totals.set("injected_faults", injected);
    totals.set("residual_faults", residual);
    totals.set("word_errors", word_errors);
    totals.set("corrected_words", total.corrected_words);
    totals.set("uncorrectable_words", total.uncorrectable_words);
    output.json.set("totals", std::move(totals));
    out << "\ntotals: " << injected << " injected, " << residual
        << " residual after repair, " << word_errors << " corrupted words, "
        << total.corrected_words << " ECC-corrected\n";

    if (app_name_ != "synthetic") {
      const double metric = total.metric / static_cast<double>(trials_);
      output.json.set("clean_metric", clean_metric);
      output.json.set("metric", metric);
      out << "clean (quantized) metric = " << format_double(clean_metric, 4)
          << ", tiered metric = " << format_double(metric, 4) << " ("
          << format_double(metric / clean_metric, 4) << " normalized)\n";
    }

    if (!baselines.empty()) {
      out << "\nuniform baselines (same trial streams, spec operating point):\n";
      console_table baseline_table(
          app_name_ != "synthetic"
              ? std::vector<std::string>{"scheme", "word errors", "metric"}
              : std::vector<std::string>{"scheme", "word errors"});
      json_value baseline_results = json_value::make_array();
      for (std::size_t b = 0; b < baselines.size(); ++b) {
        json_value entry = json_value::make_object();
        entry.set("name", baselines[b].display_name);
        entry.set("word_errors", total.baseline_word_errors[b]);
        std::vector<std::string> row{baselines[b].display_name,
                                     std::to_string(
                                         total.baseline_word_errors[b])};
        if (app_name_ != "synthetic") {
          const double metric =
              total.baseline_metrics[b] / static_cast<double>(trials_);
          entry.set("metric", metric);
          row.push_back(format_double(metric, 4));
        }
        baseline_table.add_row(std::move(row));
        baseline_results.push_back(std::move(entry));
      }
      baseline_table.print(out);
      output.json.set("baselines", std::move(baseline_results));
    }

    output.text = out.str();
    return output;
  }

  std::string app_name_;
  std::uint32_t trials_;
  std::uint32_t tiles_;
  std::vector<std::uint64_t> exact_faults_;  ///< empty = binomial injection
};

}  // namespace

namespace detail {

void register_hrm_workloads(workload_registry& registry) {
  registry.add(
      "hrm-quality",
      "per-region residual-fault + quality breakdown of a tiered design",
      "app=synthetic trials=1 tiles=1 exact_faults=",
      [](const option_map& options) {
        return std::make_unique<hrm_workload>(options);
      });
}

}  // namespace detail

}  // namespace urmem
