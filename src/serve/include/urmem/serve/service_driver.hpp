// Closed-loop concurrent driver for memory_service — the load generator
// behind tools/urmem-serve and the serve bench.
//
// Requests are indexed globally 0..requests-1; request i draws its kind
// and target row from its own stream engine
// make_stream_rng(stream_seed(seeds.root, stream_tag("serve.traffic")), i),
// and client c of N executes exactly the indices congruent to c mod N.
// The executed request *set* is therefore identical at any client
// count; only the interleaving differs, and memory_service guarantees
// integer counters are interleaving-independent.
//
// Epoch pacing: request i belongs to lifecycle epoch
// i / requests_per_epoch. A client about to issue request i first waits
// until the admin thread has stepped the service to epoch(i); the admin
// thread steps boundary e as soon as all e*requests_per_epoch earlier
// requests completed. Clients in the same epoch run fully concurrently —
// the barrier is per-epoch, not per-request. Latency is measured around
// the service call only (gate and stripe contention included, pacing
// waits excluded: the barrier is a determinism artifact, not service
// time).
#pragma once

#include <cstdint>

#include "urmem/common/json.hpp"
#include "urmem/common/stats.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/serve/memory_service.hpp"

namespace urmem {

/// Driver knobs; defaults mirror serve_spec.
struct driver_config {
  std::uint32_t clients = 1;
  std::uint64_t requests = 4096;
  std::uint64_t requests_per_epoch = 0;  ///< 0 = single epoch, no stepping
  std::uint32_t store_percent = 20;
  std::uint32_t quality_percent = 5;
  std::uint64_t seed_root = 42;
  /// >0: stop issuing new requests once this deadline passes, even with
  /// budget left. Counters stay exact (they count what ran) but are no
  /// longer spec-deterministic — use for wall-clock-bounded soak runs.
  double duration_seconds = 0.0;
};

/// The spec's serve section + seed policy as a driver_config.
[[nodiscard]] driver_config driver_config_from(const scenario_spec& spec);

/// What one drive() run measured.
struct drive_report {
  service_snapshot counters;   ///< deterministic at any client count
  latency_histogram latency;   ///< per-request service latency, ns
  std::uint64_t executed = 0;  ///< requests actually issued
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;

  /// Counters (golden-stable) plus a latency/throughput section (wall
  /// clock, never golden-diffed).
  [[nodiscard]] json_value to_json() const;
};

/// Runs the closed loop to completion (budget or deadline), drains the
/// service, and snapshots it. Spawns config.clients worker threads plus
/// one epoch-stepping admin thread when requests_per_epoch > 0.
[[nodiscard]] drive_report drive(memory_service& service,
                                 const driver_config& config);

}  // namespace urmem
