// memory_service — the resident serving tier over protected-memory
// tiles (the "millions of users" half of the roadmap's north star).
//
// A service is built from an ordinary scenario_spec: every resolved
// scheme recipe (tiered/HRM region tables included) becomes one hot
// tile — compiled fault planes, LUT codecs, spare pools and a PR 8
// lifecycle_manager — and every request is applied to all tiles, so a
// serving run compares protection schemes under identical traffic the
// same way the batch workloads do.
//
// Thread-safety and the determinism contract
// ------------------------------------------
// The service is designed so that every *integer* counter it reports
// is bit-identical at any client count, while stores, readbacks,
// quality queries and the background scrub genuinely overlap:
//
//  * An epoch gate (shared_mutex) orders traffic against maintenance.
//    Requests and scrub passes hold it shared; step_epoch's mutation
//    window — apply deferred retirements/degradation, age the timeline,
//    install the new fault map — holds it exclusive. The logical->
//    physical mapping and the fault map are therefore constant within
//    an epoch, and any request's outcome is a pure function of
//    (row, epoch).
//
//  * Stores always write the service's canonical word for the row (the
//    authoritative copy a real serving tier refreshes from), and the
//    scrubber/lifecycle write-backs are routed through the same copy
//    (scrub_hooks::rewrite_word, lifecycle_manager::set_data_source).
//    With a write-idempotent fault population — stuck-at and flip
//    faults corrupt reads, not stores — every write of a row stores
//    the same bits, so concurrent stores, readbacks and scrub rewrites
//    commute. Transition-fault populations (polarity "mixed") are
//    rejected at construction: they latch write history and would make
//    outcomes interleaving-dependent.
//
//  * Per-row stripe locks serialize touching the *same* row from two
//    threads (a data race even when idempotent); distinct rows only
//    share the relaxed atomic outcome counters, which are commutative
//    integer sums.
//
// Retirement is deliberately deferred maintenance: a scrub pass runs
// concurrently with traffic and records findings, but spares are spent
// (and rows marked / fail-stopped) only inside the next epoch
// boundary's exclusive window — the way a deployed fleet schedules
// page-retirement at a quiesce point instead of yanking a mapping
// mid-request.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "urmem/common/json.hpp"
#include "urmem/common/thread_safety.hpp"
#include "urmem/lifecycle/lifecycle_manager.hpp"
#include "urmem/scenario/scenario_spec.hpp"
#include "urmem/scheme/protected_memory.hpp"

namespace urmem {

/// Exact integer outcomes of one tile's request traffic. Plain struct
/// (snapshot form); the service accumulates the live values in relaxed
/// atomics.
struct tile_traffic_counters {
  std::uint64_t stores = 0;
  std::uint64_t readbacks = 0;
  std::uint64_t clean_reads = 0;
  std::uint64_t corrected_reads = 0;
  std::uint64_t uncorrectable_reads = 0;
  std::uint64_t word_errors = 0;        ///< readback != canonical word
  std::uint64_t quality_queries = 0;
  std::uint64_t degraded_rows_seen = 0; ///< sum of residual_rows() per query
};

/// Deterministic integer snapshot of the whole service — the golden
/// counter section of the serve report. Latency and wall-clock live in
/// the driver's report, never here.
struct service_snapshot {
  std::uint64_t requests = 0;  ///< stores + readbacks + quality queries
  std::uint64_t stores = 0;
  std::uint64_t readbacks = 0;
  std::uint64_t quality_queries = 0;
  std::uint64_t epoch_steps = 0;
  std::uint64_t snapshots = 0;  ///< stats_snapshot calls (this one included)

  struct tile_entry {
    std::string scheme;
    tile_traffic_counters traffic;
    lifecycle_counters life;
    std::uint64_t spares_left = 0;
    bool failed = false;  ///< fail-stopped (failstop degrade policy)
  };
  std::vector<tile_entry> tiles;

  /// Stable JSON form (ordered keys, exact integers) for goldens.
  [[nodiscard]] json_value to_json() const;
};

/// The serving tier; see the header comment for the concurrency and
/// determinism design.
class memory_service {
 public:
  /// Builds one tile per resolved scheme recipe. Throws spec_error for
  /// configurations that cannot serve deterministically (operating
  /// points on the fault section, transition-fault polarity) — the
  /// exact fault population comes from serve.initial_faults /
  /// serve.arrivals_per_epoch instead, seeded by named streams of
  /// seeds.root.
  explicit memory_service(const scenario_spec& spec);
  ~memory_service();

  memory_service(const memory_service&) = delete;
  memory_service& operator=(const memory_service&) = delete;

  /// Logical rows every tile serves.
  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  [[nodiscard]] std::size_t tile_count() const { return tiles_.size(); }
  /// Epochs stepped so far (0 until the first step_epoch).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_steps_.load(std::memory_order_acquire);
  }

  /// Request ops (thread-safe, shared on the epoch gate).
  void store(std::uint32_t row) URMEM_EXCLUDES(gate_);
  void readback(std::uint32_t row) URMEM_EXCLUDES(gate_);
  void quality_query() URMEM_EXCLUDES(gate_);

  /// Admin op: applies the previous epoch's deferred scrub findings,
  /// ages every live tile one epoch (new fault arrivals installed),
  /// then runs the due scrub passes concurrently with traffic under
  /// the shared gate. Call from one maintenance thread only.
  void step_epoch() URMEM_EXCLUDES(gate_);

  /// Admin op: applies any still-deferred scrub findings (call once
  /// after traffic stops so the final snapshot includes the last
  /// pass's retirements).
  void drain() URMEM_EXCLUDES(gate_);

  /// Admin op: exact counter snapshot. Counts itself. Only a snapshot
  /// taken while no request is in flight (e.g. after drain) is
  /// deterministic; mid-run snapshots are exact sums of whatever
  /// completed, which is timing-dependent.
  [[nodiscard]] service_snapshot stats_snapshot() URMEM_EXCLUDES(gate_);

  /// Forwards to every tile (test hook: compiled vs reference oracle).
  void set_fault_path(fault_path path) URMEM_EXCLUDES(gate_);

  /// Canonical word the service stores for `row` (test oracle).
  [[nodiscard]] word_t canonical_word(std::uint32_t row) const {
    return words_[row];
  }

 private:
  struct tile;  // protected_memory + lifecycle_manager + counters

  // Stripe hooks handed to the scrubber. The stripe index is computed
  // at runtime and the matching unlock arrives through a different
  // callback, so the capability analysis cannot pair the acquire with
  // its release — opted out, with the pairing enforced by the scrubber's
  // RAII row guard and the TSan lane.
  void lock_row(std::uint32_t row) URMEM_NO_THREAD_SAFETY_ANALYSIS {
    stripes_[row & stripe_mask_].lock();
  }
  void unlock_row(std::uint32_t row) URMEM_NO_THREAD_SAFETY_ANALYSIS {
    stripes_[row & stripe_mask_].unlock();
  }

  /// Boundary maintenance: spend each live tile's deferred findings and
  /// (when `advance` is set) age it one epoch. Tile lifecycle state
  /// (`alive`, the manager's fault map) mutates here, so the caller
  /// holds the gate exclusively.
  void apply_boundary(bool advance) URMEM_REQUIRES(gate_);

  /// Runs the due scrub passes, recording findings for the next
  /// boundary. Concurrent with traffic under the shared gate; called
  /// from the single admin thread only.
  void run_due_scrubs() URMEM_REQUIRES_SHARED(gate_);

  std::uint32_t rows_ = 0;
  std::vector<word_t> words_;  ///< canonical per-row data (seeds.app)
  std::vector<std::unique_ptr<tile>> tiles_;

  ts_shared_mutex gate_;  ///< shared = traffic/scrub, exclusive = boundary
  static constexpr std::uint32_t stripe_mask_ = 63;
  std::vector<ts_mutex> stripes_{stripe_mask_ + 1};

  std::atomic<std::uint64_t> epoch_steps_{0};
  std::atomic<std::uint64_t> snapshots_{0};
};

}  // namespace urmem
