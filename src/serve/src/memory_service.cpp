#include "urmem/serve/memory_service.hpp"

#include <optional>
#include <string>
#include <utility>

#include "urmem/common/bitops.hpp"
#include "urmem/common/rng.hpp"
#include "urmem/lifecycle/fault_timeline.hpp"
#include "urmem/memory/fault_sampler.hpp"
#include "urmem/scenario/workload_registry.hpp"

namespace urmem {

namespace {

// Region table of one serving tile, mirroring the lifecycle workloads:
// the recipe's own regions (or a single homogeneous one), with the
// retire section's extra runtime pool added to the reliable region.
std::vector<memory_region> tile_regions(const scenario_spec& spec,
                                        const scheme_recipe& recipe,
                                        std::uint32_t rows) {
  std::vector<memory_region> regions = recipe.regions;
  if (regions.empty()) {
    regions.push_back(memory_region{0, rows - 1, recipe.spare_rows, 0});
  }
  if (spec.retire.reliable_region >= regions.size()) {
    throw spec_error("retire.reliable_region",
                     "tile has only " + std::to_string(regions.size()) +
                         " region(s)");
  }
  regions[spec.retire.reliable_region].spare_rows += spec.retire.spare_rows;
  return regions;
}

}  // namespace

/// One hot tile: the protected memory, its lifecycle manager, the
/// deferred scrub findings of the in-flight epoch, and the relaxed
/// atomic traffic counters (commutative sums, so any interleaving of
/// fetch_adds totals the same).
///
/// `memory`, `manager` and `alive` follow the service's gate
/// discipline — mutated only inside the exclusive boundary window
/// (apply_boundary), read under at least the shared gate. That is
/// expressed on the service's helpers (URMEM_REQUIRES(gate_)) rather
/// than here, because a nested struct cannot name the owning service's
/// gate in a member attribute. `findings` is the one member written
/// under only the *shared* gate (the concurrent scrub pass appends),
/// so it carries its own capability.
struct memory_service::tile {
  std::string name;
  protected_memory memory;
  std::optional<lifecycle_manager> manager;  // built after the fault map
  ts_mutex findings_mutex;
  /// Deferred until the boundary: appended by the scrub pass (shared
  /// gate, admin thread), spent and cleared by apply_boundary
  /// (exclusive gate).
  std::vector<scrub_finding> findings URMEM_GUARDED_BY(findings_mutex);
  scrub_hooks hooks;
  bool alive = true;  ///< false after fail-stop: no more aging or scrubbing

  std::atomic<std::uint64_t> stores{0};
  std::atomic<std::uint64_t> readbacks{0};
  std::atomic<std::uint64_t> clean_reads{0};
  std::atomic<std::uint64_t> corrected_reads{0};
  std::atomic<std::uint64_t> uncorrectable_reads{0};
  std::atomic<std::uint64_t> word_errors{0};
  std::atomic<std::uint64_t> quality_queries{0};
  std::atomic<std::uint64_t> degraded_rows_seen{0};

  tile(std::string name_, std::uint32_t rows,
       std::unique_ptr<protection_scheme> scheme,
       std::vector<memory_region> regions)
      : name(std::move(name_)),
        memory(rows, std::move(scheme), std::move(regions)) {}

  [[nodiscard]] tile_traffic_counters traffic() const {
    tile_traffic_counters t;
    t.stores = stores.load(std::memory_order_relaxed);
    t.readbacks = readbacks.load(std::memory_order_relaxed);
    t.clean_reads = clean_reads.load(std::memory_order_relaxed);
    t.corrected_reads = corrected_reads.load(std::memory_order_relaxed);
    t.uncorrectable_reads = uncorrectable_reads.load(std::memory_order_relaxed);
    t.word_errors = word_errors.load(std::memory_order_relaxed);
    t.quality_queries = quality_queries.load(std::memory_order_relaxed);
    t.degraded_rows_seen = degraded_rows_seen.load(std::memory_order_relaxed);
    return t;
  }
};

memory_service::memory_service(const scenario_spec& spec) {
  if (spec.fault.pcell.has_value() || spec.fault.vdd.has_value()) {
    throw spec_error("fault",
                     "serve draws serve.initial_faults exactly; remove the "
                     "pcell/vdd operating point");
  }
  reject_region_operating_points(spec, "serve");
  if (spec.fault.polarity == fault_polarity::mixed) {
    throw spec_error("fault.polarity",
                     "serve requires write-idempotent faults (flip or "
                     "random-stuck); transition faults latch write history "
                     "and break the concurrent determinism contract");
  }

  rows_ = spec.geometry.rows_per_tile;
  words_.resize(rows_);
  rng data_gen = named_stream_rng(spec.seeds.app, "serve.data");
  const word_t mask = word_mask(spec.geometry.word_bits);
  for (word_t& word : words_) word = data_gen() & mask;

  const std::vector<scheme_recipe> recipes = resolve_schemes(spec);
  tiles_.reserve(recipes.size());
  for (std::size_t index = 0; index < recipes.size(); ++index) {
    const scheme_recipe& recipe = recipes[index];
    auto entry = std::make_unique<tile>(recipe.display_name, rows_,
                                        recipe.factory(rows_),
                                        tile_regions(spec, recipe, rows_));

    // Per-tile fault stream: the manufactured map and the timeline seed
    // both derive from seeds.root through one named stream, so the
    // fault history is a pure function of (spec, tile index).
    rng gen = named_stream_rng(spec.seeds.root,
                               "serve.tile." + std::to_string(index));
    fault_map initial =
        spec.serve.initial_faults > 0
            ? sample_fault_map_exact(entry->memory.storage_geometry(),
                                     spec.serve.initial_faults, gen,
                                     spec.fault.polarity)
            : fault_map(entry->memory.storage_geometry());
    entry->memory.set_fault_map(initial);

    timeline_config config;
    config.arrivals_per_epoch = spec.serve.arrivals_per_epoch;
    config.intermittent_cells = spec.serve.intermittent_cells;
    config.polarity = spec.fault.polarity;
    config.seed = gen();
    entry->manager.emplace(entry->memory,
                           fault_timeline(std::move(initial), config),
                           spec.scrub.config(), spec.retire.config());
    entry->manager->set_data_source(
        [this](std::uint32_t row) { return words_[row]; });
    entry->hooks.lock_row = [this](std::uint32_t row) { lock_row(row); };
    entry->hooks.unlock_row = [this](std::uint32_t row) { unlock_row(row); };
    entry->hooks.rewrite_word = [this](std::uint32_t row, word_t) {
      return words_[row];
    };

    entry->memory.write_block(0, words_);
    tiles_.push_back(std::move(entry));
  }
}

memory_service::~memory_service() = default;

void memory_service::store(std::uint32_t row) {
  ts_shared_lock gate(gate_);
  ts_lock_guard stripe(stripes_[row & stripe_mask_]);
  for (const auto& entry : tiles_) {
    entry->memory.write(row, words_[row]);
    entry->stores.fetch_add(1, std::memory_order_relaxed);
  }
}

void memory_service::readback(std::uint32_t row) {
  ts_shared_lock gate(gate_);
  ts_lock_guard stripe(stripes_[row & stripe_mask_]);
  for (const auto& entry : tiles_) {
    const read_result result = entry->memory.read(row);
    entry->readbacks.fetch_add(1, std::memory_order_relaxed);
    switch (result.status) {
      case ecc_status::clean:
        entry->clean_reads.fetch_add(1, std::memory_order_relaxed);
        break;
      case ecc_status::corrected:
        entry->corrected_reads.fetch_add(1, std::memory_order_relaxed);
        break;
      case ecc_status::detected_uncorrectable:
        entry->uncorrectable_reads.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    if (result.data != words_[row]) {
      entry->word_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void memory_service::quality_query() {
  ts_shared_lock gate(gate_);
  for (const auto& entry : tiles_) {
    entry->quality_queries.fetch_add(1, std::memory_order_relaxed);
    entry->degraded_rows_seen.fetch_add(entry->memory.residual_rows(),
                                        std::memory_order_relaxed);
  }
}

void memory_service::apply_boundary(bool advance) {
  for (const auto& entry : tiles_) {
    if (!entry->alive) continue;
    {
      ts_lock_guard findings(entry->findings_mutex);
      if (!entry->manager->apply_findings(entry->findings)) {
        entry->alive = false;
      }
      entry->findings.clear();
    }
    if (advance && entry->alive && !entry->manager->advance_epoch()) {
      entry->alive = false;
    }
  }
}

void memory_service::run_due_scrubs() {
  for (const auto& entry : tiles_) {
    if (!entry->alive || !entry->manager->scrub_due()) continue;
    // Lock order gate -> findings_mutex -> stripe (the pass takes row
    // stripes through the hooks); traffic takes gate -> stripe only, so
    // there is no cycle.
    ts_lock_guard findings(entry->findings_mutex);
    entry->manager->run_scrub_pass(entry->findings, &entry->hooks);
  }
}

void memory_service::step_epoch() {
  {
    ts_unique_lock gate(gate_);
    apply_boundary(/*advance=*/true);
    epoch_steps_.fetch_add(1, std::memory_order_release);
  }
  // The pass itself runs under the shared gate, concurrent with request
  // traffic; its retirements stay deferred in `findings` until the next
  // boundary (or drain()).
  ts_shared_lock gate(gate_);
  run_due_scrubs();
}

void memory_service::drain() {
  ts_unique_lock gate(gate_);
  apply_boundary(/*advance=*/false);
}

service_snapshot memory_service::stats_snapshot() {
  // Exclusive: lifecycle_counters are plain integers written by the
  // concurrent scrub pass, so a snapshot must not overlap one.
  ts_unique_lock gate(gate_);
  service_snapshot snap;
  snap.epoch_steps = epoch_steps_.load(std::memory_order_relaxed);
  snap.snapshots = snapshots_.fetch_add(1, std::memory_order_relaxed) + 1;
  for (const auto& entry : tiles_) {
    service_snapshot::tile_entry out;
    out.scheme = entry->name;
    out.traffic = entry->traffic();
    out.life = entry->manager->counters();
    for (std::size_t r = 0; r < entry->memory.regions().size(); ++r) {
      out.spares_left += entry->memory.unused_spares(r);
    }
    out.failed = entry->manager->failed();
    snap.stores += out.traffic.stores;
    snap.readbacks += out.traffic.readbacks;
    snap.quality_queries += out.traffic.quality_queries;
    snap.tiles.push_back(std::move(out));
  }
  // Per-tile counts are per-request *per tile*; the service-level view
  // counts each request once.
  if (!tiles_.empty()) {
    snap.stores /= tiles_.size();
    snap.readbacks /= tiles_.size();
    snap.quality_queries /= tiles_.size();
  }
  snap.requests = snap.stores + snap.readbacks + snap.quality_queries;
  return snap;
}

void memory_service::set_fault_path(fault_path path) {
  ts_unique_lock gate(gate_);
  for (const auto& entry : tiles_) entry->memory.set_fault_path(path);
}

json_value service_snapshot::to_json() const {
  json_value doc = json_value::make_object();
  json_value requests_json = json_value::make_object();
  requests_json.set("total", requests);
  requests_json.set("stores", stores);
  requests_json.set("readbacks", readbacks);
  requests_json.set("quality_queries", quality_queries);
  requests_json.set("epoch_steps", epoch_steps);
  requests_json.set("snapshots", snapshots);
  doc.set("requests", std::move(requests_json));

  json_value tiles_json = json_value::make_array();
  for (const tile_entry& entry : tiles) {
    json_value tile_json = json_value::make_object();
    tile_json.set("scheme", entry.scheme);

    json_value traffic_json = json_value::make_object();
    traffic_json.set("stores", entry.traffic.stores);
    traffic_json.set("readbacks", entry.traffic.readbacks);
    traffic_json.set("clean_reads", entry.traffic.clean_reads);
    traffic_json.set("corrected_reads", entry.traffic.corrected_reads);
    traffic_json.set("uncorrectable_reads", entry.traffic.uncorrectable_reads);
    traffic_json.set("word_errors", entry.traffic.word_errors);
    traffic_json.set("quality_queries", entry.traffic.quality_queries);
    traffic_json.set("degraded_rows_seen", entry.traffic.degraded_rows_seen);
    tile_json.set("traffic", std::move(traffic_json));

    json_value life_json = json_value::make_object();
    life_json.set("epochs", entry.life.epochs);
    life_json.set("injected_faults", entry.life.injected_faults);
    life_json.set("scrub_passes", entry.life.scrub_passes);
    life_json.set("rows_scrubbed", entry.life.rows_scrubbed);
    life_json.set("corrected_rewrites", entry.life.corrected_rewrites);
    life_json.set("ce_retirements", entry.life.ce_retirements);
    life_json.set("ue_detected", entry.life.ue_detected);
    life_json.set("read_retries", entry.life.read_retries);
    life_json.set("retry_successes", entry.life.retry_successes);
    life_json.set("ue_retirements", entry.life.ue_retirements);
    life_json.set("pool_exhausted", entry.life.pool_exhausted);
    life_json.set("cross_region_remaps", entry.life.cross_region_remaps);
    life_json.set("marked_rows", entry.life.marked_rows);
    life_json.set("failstops", entry.life.failstops);
    tile_json.set("lifecycle", std::move(life_json));

    tile_json.set("spares_left", entry.spares_left);
    tile_json.set("failed", entry.failed);
    tiles_json.push_back(std::move(tile_json));
  }
  doc.set("tiles", std::move(tiles_json));
  return doc;
}

}  // namespace urmem
