#include "urmem/serve/service_driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "urmem/common/rng.hpp"
#include "urmem/common/thread_safety.hpp"

namespace urmem {

namespace {

/// Shared pacing state: completed-request count (atomic, bumped outside
/// any lock) and the admin thread's published epoch. The cv is only
/// signalled at epoch-boundary crossings, so the hot path is one
/// fetch_add per request.
struct pacing {
  ts_mutex mutex;
  ts_condition_variable cv;
  std::atomic<std::uint64_t> completed{0};
  std::uint64_t epoch_done URMEM_GUARDED_BY(mutex) = 0;
  bool stop URMEM_GUARDED_BY(mutex) = false;  ///< deadline reached
};

}  // namespace

driver_config driver_config_from(const scenario_spec& spec) {
  driver_config config;
  config.clients = spec.serve.clients;
  config.requests = spec.serve.requests;
  config.requests_per_epoch = spec.serve.requests_per_epoch;
  config.store_percent = spec.serve.store_percent;
  config.quality_percent = spec.serve.quality_percent;
  config.seed_root = spec.seeds.root;
  return config;
}

drive_report drive(memory_service& service, const driver_config& config) {
  const std::uint64_t total = config.requests;
  const std::uint64_t per_epoch = config.requests_per_epoch;
  const std::uint32_t clients = std::max<std::uint32_t>(1, config.clients);
  const std::uint64_t traffic_seed =
      stream_seed(config.seed_root, stream_tag("serve.traffic"));
  const std::uint32_t rows = service.rows();
  const bool timed = config.duration_seconds > 0.0;

  pacing pace;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      timed ? config.duration_seconds : 0.0));

  std::vector<latency_histogram> histograms(clients);

  auto client_loop = [&](std::uint32_t client) {
    latency_histogram& histogram = histograms[client];
    for (std::uint64_t index = client; index < total; index += clients) {
      if (per_epoch > 0) {
        // Wait for the service to reach this request's epoch. Manual
        // predicate loop so the guarded reads sit in this function,
        // where the analysis can see the held capability.
        const std::uint64_t target = index / per_epoch;
        ts_lock_guard lock(pace.mutex);
        while (!pace.stop && pace.epoch_done < target) {
          pace.cv.wait(pace.mutex);
        }
        if (pace.stop) return;
      } else if (timed) {
        ts_lock_guard lock(pace.mutex);
        if (pace.stop) return;
      }

      rng gen = make_stream_rng(traffic_seed, index);
      const std::uint64_t draw = gen.uniform_below(100);
      const auto row = static_cast<std::uint32_t>(gen.uniform_below(rows));

      const auto issued = std::chrono::steady_clock::now();
      if (draw < config.store_percent) {
        service.store(row);
      } else if (draw < config.store_percent + config.quality_percent) {
        service.quality_query();
      } else {
        service.readback(row);
      }
      const auto finished = std::chrono::steady_clock::now();
      histogram.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(finished -
                                                               issued)
              .count()));

      const std::uint64_t done =
          pace.completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      const bool deadline_hit = timed && finished >= deadline;
      if (deadline_hit || done == total ||
          (per_epoch > 0 && done % per_epoch == 0)) {
        {
          ts_lock_guard lock(pace.mutex);
          if (deadline_hit) pace.stop = true;
        }
        pace.cv.notify_all();
      }
    }
  };

  // Epoch boundaries strictly inside the budget: boundary e (stepping
  // the service to epoch e) fires once the first e*per_epoch requests
  // completed, for every e with e*per_epoch < total.
  auto admin_loop = [&] {
    const std::uint64_t boundaries =
        (per_epoch == 0 || total == 0) ? 0 : (total - 1) / per_epoch;
    for (std::uint64_t epoch = 1; epoch <= boundaries; ++epoch) {
      {
        ts_lock_guard lock(pace.mutex);
        while (!pace.stop &&
               pace.completed.load(std::memory_order_acquire) <
                   epoch * per_epoch) {
          pace.cv.wait(pace.mutex);
        }
        if (pace.stop) return;
      }
      service.step_epoch();
      {
        ts_lock_guard lock(pace.mutex);
        pace.epoch_done = epoch;
      }
      pace.cv.notify_all();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(clients + 1);
  if (per_epoch > 0) workers.emplace_back(admin_loop);
  for (std::uint32_t client = 0; client < clients; ++client) {
    workers.emplace_back(client_loop, client);
  }
  for (std::thread& worker : workers) worker.join();

  service.drain();

  drive_report report;
  report.counters = service.stats_snapshot();
  for (const latency_histogram& histogram : histograms) {
    report.latency.merge(histogram);
  }
  report.executed = pace.completed.load(std::memory_order_acquire);
  const auto end = std::chrono::steady_clock::now();
  report.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  report.requests_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.executed) / report.wall_seconds
          : 0.0;
  return report;
}

json_value drive_report::to_json() const {
  json_value doc = json_value::make_object();
  doc.set("counters", counters.to_json());

  json_value latency_json = json_value::make_object();
  latency_json.set("samples", latency.count());
  latency_json.set("wall_seconds", wall_seconds);
  latency_json.set("requests_per_second", requests_per_second);
  latency_json.set("mean_ns", latency.mean());
  latency_json.set("p50_ns", latency.quantile(0.5));
  latency_json.set("p99_ns", latency.quantile(0.99));
  latency_json.set("p999_ns", latency.quantile(0.999));
  latency_json.set("min_ns", latency.min());
  latency_json.set("max_ns", latency.max());
  doc.set("latency", std::move(latency_json));
  return doc;
}

}  // namespace urmem
